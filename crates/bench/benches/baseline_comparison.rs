//! E8 — per-model-change view maintenance cost across architectures:
//! retained-MVC targeted updates (hand-written rules), retained-MVC
//! full rebuild, immediate-mode full re-render (the paper's approach),
//! and immediate-mode with the §5 reuse cache. The paper's position:
//! the retained approach is the fastest per update but requires
//! dangerous hand-written view-update code; immediate mode trades a
//! bounded render cost for correctness by construction.

use alive_baseline::retained::{update_prices, update_selection};
use alive_baseline::{build_listings_view, ListingsModel, RetainedApp};
use alive_bench::{feed_session, feed_touch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn listings_model(n: usize) -> ListingsModel {
    ListingsModel {
        listings: (0..n)
            .map(|i| (format!("{i} Oak Ave"), 100_000.0 + i as f64))
            .collect(),
        selected: 0,
    }
}

fn bench_baseline_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(30);
    for n in [10usize, 100, 400] {
        group.bench_with_input(BenchmarkId::new("retained_update", n), &n, |b, &n| {
            let mut app = RetainedApp::new(listings_model(n), build_listings_view);
            app.on_change("selection", update_selection);
            app.on_change("price", update_prices);
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                if i.is_multiple_of(2) {
                    app.mutate("selection", |m| m.selected = i % n);
                } else {
                    app.mutate("price", |m| m.listings[i % n].1 += 1.0);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("retained_rebuild", n), &n, |b, &n| {
            // The "correct by construction" variant of retained MVC:
            // rebuild the whole widget tree from the model per change —
            // i.e. immediate mode in the host language.
            let mut app = RetainedApp::new(listings_model(n), build_listings_view);
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                app.model.selected = i % n;
                std::hint::black_box(build_listings_view(&app.model))
            });
        });
        group.bench_with_input(BenchmarkId::new("immediate_naive", n), &n, |b, &n| {
            let mut session = feed_session(n, false);
            let mut i = 0usize;
            b.iter(|| {
                feed_touch(&mut session, i);
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("immediate_memo", n), &n, |b, &n| {
            let mut session = feed_session(n, true);
            let mut i = 0usize;
            b.iter(|| {
                feed_touch(&mut session, i);
                i += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline_comparison);
criterion_main!(benches);
