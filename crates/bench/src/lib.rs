//! # alive-bench
//!
//! Shared workload builders and measurement helpers for the experiment
//! harness. Each experiment in DESIGN.md §4 maps to one `alive-testkit`
//! bench in `benches/` (wall-clock timing) and one table in the [`tables`]
//! module (deterministic cost-model numbers: simulated web latency,
//! evaluation steps, boxes built/reused). `cargo run -p alive-bench
//! --bin tables` regenerates every table in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod tables;
pub mod workloads;

pub use workloads::*;
