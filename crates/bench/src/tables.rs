//! Deterministic experiment tables (EXPERIMENTS.md is generated from
//! this output; `cargo run -p alive-bench --bin tables`).
//!
//! Wall-clock columns are indicative (machine-dependent); the
//! simulated-latency, step-count, and box-count columns are exact and
//! reproducible — they come from the deterministic cost model.

use crate::workloads::*;
use alive_apps::{gallery, mortgage};
use alive_baseline::retained::{update_prices, update_selection};
use alive_baseline::{build_listings_view, FixAndContinueSession, ListingsModel, RetainedApp};
use alive_core::event::EventQueue;
use alive_core::fixup::fixup_store;
use alive_core::store::Store;
use alive_core::{bigstep, compile, smallstep, Value};
use std::fmt::Write as _;
use std::time::Instant;

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// E3 — feedback latency: live UPDATE vs full restart, per edit.
pub fn table_e3_feedback_latency() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E3. Feedback latency per code edit (3 edits on the detail page)\n\
         listings | live sim-ms/edit | live downloads | restart sim-ms/edit | restart downloads | live wall-ms/edit | restart wall-ms/edit"
    )
    .unwrap();
    for n in [10usize, 100, 400] {
        let edits = 3u32;

        let mut live = mortgage_live_on_detail(n);
        let live_before = live.system().cost().prim;
        let live_wall = time_ms(|| {
            for i in 0..edits {
                let (a, b) = label_variants(live.source());
                let target = if i % 2 == 0 { a } else { b };
                assert!(live.edit_source(&target).is_applied());
            }
        });
        let live_after = live.system().cost().prim;

        let mut restart = mortgage_restart_on_detail(n);
        let restart_before = restart.cost().prim;
        let restart_wall = time_ms(|| {
            for i in 0..edits {
                let (a, b) = label_variants(restart.source());
                let target = if i % 2 == 0 { a } else { b };
                restart.edit_source(&target).expect("edit");
            }
        });
        let restart_after = restart.cost().prim;

        writeln!(
            out,
            "{n:8} | {:16.1} | {:14} | {:19.1} | {:17} | {:17.2} | {:20.2}",
            (live_after.simulated_ms - live_before.simulated_ms) / f64::from(edits),
            live_after.web_requests - live_before.web_requests,
            (restart_after.simulated_ms - restart_before.simulated_ms) / f64::from(edits),
            restart_after.web_requests - restart_before.web_requests,
            live_wall / f64::from(edits),
            restart_wall / f64::from(edits),
        )
        .unwrap();
    }
    out
}

/// E4 — render scaling: naive full rebuild vs §5 memoized reuse, on a
/// dependency-sparse workload (one row's data changes per tap) and a
/// dependency-dense one (every tile reads the changed global).
pub fn table_e4_render_scaling() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E4. Render cost per model change (5 taps each)\n\
         workload        | boxes | naive boxes/redraw | memo boxes/redraw | memo reused/redraw | naive steps/redraw | memo steps/redraw"
    )
    .unwrap();
    type Touch = fn(&mut alive_live::LiveSession, usize);
    type Make = fn(usize, bool) -> alive_live::LiveSession;
    let workloads: [(&str, Make, Touch); 2] = [
        ("feed (sparse)", feed_session, feed_touch),
        ("gallery (dense)", gallery_session, gallery_select_next),
    ];
    for (name, make, touch) in workloads {
        for n in [10usize, 100, 400, 1000] {
            let taps = 5usize;
            let mut rows = Vec::new();
            for memo in [false, true] {
                let mut session = make(n, memo);
                // Warm: one full render has happened in the constructor.
                let before = session.system().cost();
                for i in 0..taps {
                    touch(&mut session, i);
                }
                let after = session.system().cost();
                rows.push((
                    (after.boxes_created - before.boxes_created) as f64 / taps as f64,
                    (after.boxes_reused - before.boxes_reused) as f64 / taps as f64,
                    (after.steps - before.steps) as f64 / taps as f64,
                ));
            }
            writeln!(
                out,
                "{name:15} | {n:5} | {:18.1} | {:17.1} | {:18.1} | {:18.0} | {:17.0}",
                rows[0].0, rows[1].0, rows[1].1, rows[0].2, rows[1].2
            )
            .unwrap();
        }
    }
    out
}

/// E5 — continuous type checking: compile (parse + lower + check)
/// throughput vs program size.
pub fn table_e5_typecheck() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E5. Compile latency vs program size; one-item edits with the incremental parse cache\n\
         functions | source bytes | core nodes | full wall-ms | incremental wall-ms (medians of 9)"
    )
    .unwrap();
    for n in [10usize, 50, 200, 500] {
        let src = gallery::wide_program_src(n);
        let program = compile(&src).expect("compiles");
        let mut samples: Vec<f64> = (0..9)
            .map(|_| {
                time_ms(|| {
                    compile(&src).expect("compiles");
                })
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        // Incremental: one body token flips per keystroke.
        let mut compiler = alive_core::IncrementalCompiler::new();
        compiler.compile(&src).expect("compiles");
        let variant = src.replace("x * 2 + g0", "x * 3 + g0");
        let mut inc_samples: Vec<f64> = (0..9)
            .map(|i| {
                let target: &str = if i % 2 == 0 { &variant } else { &src };
                time_ms(|| {
                    compiler.compile(target).expect("compiles");
                })
            })
            .collect();
        inc_samples.sort_by(f64::total_cmp);
        writeln!(
            out,
            "{n:9} | {:12} | {:10} | {:12.2} | {:10.2}",
            src.len(),
            program.node_count(),
            samples[4],
            inc_samples[4],
        )
        .unwrap();
    }
    out
}

/// E6 — UPDATE fix-up cost vs store size, plus decision counts.
pub fn table_e6_update_fixup() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E6. Fig. 12 fix-up vs store size (half the entries survive)\n\
         globals | kept | dropped | fixup wall-ms (median of 9)"
    )
    .unwrap();
    for n in [10usize, 100, 1000] {
        // New code declares only the even globals.
        let mut src = String::new();
        for i in (0..n).step_by(2) {
            src.push_str(&format!("global g{i} : number = {i}\n"));
        }
        src.push_str("page start() { render { } }\n");
        let program = compile(&src).expect("compiles");
        let mut store = Store::new();
        for i in 0..n {
            store.set(format!("g{i}"), Value::Number(i as f64));
        }
        let (fixed, report) = fixup_store(&program, &store);
        let mut samples: Vec<f64> = (0..9)
            .map(|_| {
                time_ms(|| {
                    let _ = fixup_store(&program, &store);
                })
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        writeln!(
            out,
            "{n:7} | {:4} | {:7} | {:10.3}",
            fixed.len(),
            report.dropped_globals.len(),
            samples[4]
        )
        .unwrap();
    }
    out
}

/// E7 — ablation: the faithful small-step substitution machine vs the
/// production big-step evaluator on the same workloads.
pub fn table_e7_eval_ablation() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E7. Faithful small-step machine vs big-step evaluator\n\
         workload | bigstep steps | smallstep steps (p/s/r) | bigstep wall-ms | smallstep wall-ms"
    )
    .unwrap();

    let fib_src = "fun fib(n: number): number pure {
             if n < 2 { n } else { fib(n - 1) + fib(n - 2) }
         }
         fun main(): number pure { fib(16) }
         page start() { render { } }";
    let render_src = gallery::gallery_src(30);

    // fib workload.
    let p = compile(fib_src).expect("compiles");
    let body = p.fun("main").expect("fun").body.clone();
    let store = Store::new();
    let mut big_cost = 0u64;
    let big_ms = time_ms(|| {
        let (_, cost) = bigstep::run_pure(&p, &store, 0, u64::MAX, &body).expect("runs");
        big_cost = cost.steps;
    });
    let mut small_counts = smallstep::StepCounts::default();
    let mut store2 = Store::new();
    let small_ms = time_ms(|| {
        let out = smallstep::eval_pure(&p, &mut store2, u64::MAX, &body).expect("runs");
        small_counts = out.steps;
    });
    writeln!(
        out,
        "fib(16)  | {big_cost:13} | {:10}/{}/{} | {big_ms:15.2} | {small_ms:17.2}",
        small_counts.pure, small_counts.state, small_counts.render
    )
    .unwrap();

    // render workload.
    let p = compile(&render_src).expect("compiles");
    let page = p.page("start").expect("page");
    let mut store = Store::new();
    let mut queue = EventQueue::new();
    bigstep::run_state(&p, &mut store, &mut queue, 0, u64::MAX, vec![], &page.init).expect("init");
    let render = page.render.clone();
    let mut big_cost = 0u64;
    let big_ms = time_ms(|| {
        let out = bigstep::run_render(&p, &store, 0, u64::MAX, vec![], &render).expect("runs");
        big_cost = out.cost.steps;
    });
    let mut small_counts = smallstep::StepCounts::default();
    let small_ms = time_ms(|| {
        let out = smallstep::eval_render(&p, &mut store, u64::MAX, &render).expect("runs");
        small_counts = out.steps;
    });
    writeln!(
        out,
        "render30 | {big_cost:13} | {:10}/{}/{} | {big_ms:15.2} | {small_ms:17.2}",
        small_counts.pure, small_counts.state, small_counts.render
    )
    .unwrap();
    out
}

/// E8 — baseline comparison: staleness incidents and update costs.
pub fn table_e8_baselines() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E8. View consistency across architectures (10 model changes, 50 rows)\n\
         architecture        | stale views possible | stale views observed | hand-written update code"
    )
    .unwrap();

    // Immediate mode (ours): re-render per change; staleness impossible.
    writeln!(
        out,
        "immediate (live)    | {:20} | {:20} | {:24}",
        "no", 0, "none"
    )
    .unwrap();

    // Fix-and-continue: every view-code edit leaves a stale display.
    let src = "
        global n : number = 0
        page start() {
            render { boxed { post \"n is \" ++ n; on tap { n := n + 1; } } }
        }";
    let mut fnc = FixAndContinueSession::new(src).expect("starts");
    for i in 0..10 {
        let label = format!("\"v{i}: \"");
        let new_src = src.replace("\"n is \"", &label);
        fnc.swap_code(&new_src).expect("swaps");
    }
    writeln!(
        out,
        "fix-and-continue    | {:20} | {:20} | {:24}",
        "yes",
        fnc.stale_views_served(),
        "none (display frozen)"
    )
    .unwrap();

    // Retained MVC with a complete rule set vs a forgotten rule.
    let model = ListingsModel {
        listings: (0..50)
            .map(|i| (format!("{i} Oak"), 1000.0 + i as f64))
            .collect(),
        selected: 0,
    };
    let mut complete = RetainedApp::new(model.clone(), build_listings_view);
    complete.on_change("selection", update_selection);
    complete.on_change("price", update_prices);
    let mut buggy = RetainedApp::new(model, build_listings_view);
    buggy.on_change("selection", update_selection);
    let mut buggy_stale = 0;
    for i in 0..10 {
        if i % 2 == 0 {
            complete.mutate("selection", |m| m.selected = i);
            buggy.mutate("selection", |m| m.selected = i);
        } else {
            complete.mutate("price", |m| m.listings[i].1 += 1.0);
            buggy.mutate("price", |m| m.listings[i].1 += 1.0);
        }
        if !buggy.view_consistent(build_listings_view) {
            buggy_stale += 1;
        }
    }
    assert!(complete.view_consistent(build_listings_view));
    writeln!(
        out,
        "retained MVC (full) | {:20} | {:20} | {:24}",
        "yes", 0, "2 update rules"
    )
    .unwrap();
    writeln!(
        out,
        "retained MVC (bug)  | {:20} | {:20} | {:24}",
        "yes", buggy_stale, "1 of 2 rules (forgot one)"
    )
    .unwrap();
    out
}

/// E2 — the three improvements as a scripted live session: edits
/// applied, downloads paid, context preserved.
pub fn table_e2_improvements() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E2. The paper's I1-I3 improvements, applied live on the detail page\n\
         step | edit               | applied | downloads so far | still on detail page"
    )
    .unwrap();
    let mut s = mortgage_live_on_detail(8);
    type Improve = fn(&str) -> String;
    let edits: [(&str, Improve); 3] = [
        ("I1 margins", mortgage::apply_improvement_i1),
        ("I2 dollars+cents", mortgage::apply_improvement_i2),
        ("I3 row highlight", mortgage::apply_improvement_i3),
    ];
    for (i, (name, f)) in edits.iter().enumerate() {
        let outcome = s.edit_source(&f(s.source()));
        writeln!(
            out,
            "{:4} | {name:18} | {:7} | {:16} | {}",
            i + 1,
            outcome.is_applied(),
            s.system().cost().prim.web_requests,
            s.system().current_page().map(|(n, _)| n) == Some("detail"),
        )
        .unwrap();
    }
    out
}

/// E11 — the §7 `remember` extension: per-instance view state vs the
/// paper's baseline encoding (one global per widget instance).
pub fn table_e11_view_state() -> String {
    use alive_live::LiveSession;
    let mut out = String::new();
    writeln!(
        out,
        "E11. View-state encapsulation: n counters, 5 taps on counter 0\n\
         encoding          | counters | globals used | slots used | steps/tap | model untouched"
    )
    .unwrap();
    for n in [4usize, 32] {
        // remember-based: zero globals.
        let mut remembered = String::from("page start() {\n    render {\n");
        remembered.push_str(&format!("        for i in 0 .. {n} {{\n"));
        remembered.push_str(
            "            boxed {\n                remember c : number = 0;\n                \
             post i ++ \": \" ++ c;\n                on tap { c := c + 1; }\n            }\n",
        );
        remembered.push_str("        }\n    }\n}\n");
        // global-based: the §5 baseline — one global list indexed by i.
        let globals = format!(
            "global counts : list number = []\n\
             page start() {{\n    init {{ counts := list.range(0, {n}) ; \
             counts := list.set(counts, 0, 0); }}\n    render {{\n        \
             for i in 0 .. {n} {{\n            boxed {{\n                \
             post i ++ \": \" ++ list.nth(counts, i);\n                \
             on tap {{ counts := list.set(counts, i, list.nth(counts, i) + 1); }}\n            \
             }}\n        }}\n    }}\n}}\n"
        );
        for (name, src, expect_globals) in [
            ("remember (view)", remembered.as_str(), 0usize),
            ("globals (model)", globals.as_str(), 1usize),
        ] {
            let mut session = LiveSession::new(src).expect("compiles");
            let before = session.system().cost().steps;
            for _ in 0..5 {
                session.tap_path(&[0]).expect("tap");
            }
            let after = session.system().cost().steps;
            writeln!(
                out,
                "{name:17} | {n:8} | {:12} | {:10} | {:9} | {}",
                session.system().store().len(),
                session.system().widgets().len(),
                (after - before) / 5,
                session.system().store().len() == expect_globals,
            )
            .unwrap();
        }
    }
    out
}

/// All tables, in experiment order.
pub fn all_tables() -> String {
    [
        table_e2_improvements(),
        table_e3_feedback_latency(),
        table_e4_render_scaling(),
        table_e5_typecheck(),
        table_e6_update_fixup(),
        table_e7_eval_ablation(),
        table_e8_baselines(),
        table_e11_view_state(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_with_expected_shape() {
        let e3 = table_e3_feedback_latency();
        assert!(e3.contains("restart"));
        // Deterministic shape: live pays zero download latency, restart
        // pays one download per edit.
        let first_row = e3.lines().nth(2).expect("data row");
        let cols: Vec<&str> = first_row.split('|').map(str::trim).collect();
        assert_eq!(cols[1], "0.0", "live pays no download: {first_row}");
        assert_eq!(cols[2], "0", "live never re-downloads");
        assert_eq!(cols[4], "3", "restart downloads once per edit");

        let e4 = table_e4_render_scaling();
        // Sparse workload: the memo rebuilds far fewer boxes.
        let sparse_row = e4.lines().nth(2).expect("data row");
        let cols: Vec<&str> = sparse_row.split('|').map(str::trim).collect();
        let naive: f64 = cols[2].parse().expect("number");
        let memo: f64 = cols[3].parse().expect("number");
        assert!(
            memo < naive / 2.0,
            "memo rebuilds fewer boxes: {sparse_row}"
        );
        // Dense workload: the memo cannot help (every tile's inputs changed).
        let dense_row = e4
            .lines()
            .find(|l| l.contains("gallery (dense)"))
            .expect("dense row");
        let cols: Vec<&str> = dense_row.split('|').map(str::trim).collect();
        let naive: f64 = cols[2].parse().expect("number");
        let memo: f64 = cols[3].parse().expect("number");
        assert_eq!(naive, memo, "dense deps defeat reuse: {dense_row}");

        let e8 = table_e8_baselines();
        assert!(e8.contains("immediate (live)"));
        assert!(e8
            .lines()
            .any(|l| l.contains("fix-and-continue") && l.contains("10")));
    }
}
