//! Regenerate every experiment table: `cargo run -p alive-bench --bin
//! tables --release`. The output is recorded in EXPERIMENTS.md.

fn main() {
    println!("its-alive experiment tables (see DESIGN.md §4 for the index)");
    println!("=============================================================\n");
    print!("{}", alive_bench::tables::all_tables());
}
