//! Workload builders shared by the wall-clock benches and the tables
//! binary.

use alive_apps::{gallery, mortgage};
use alive_baseline::{NavAction, RestartSession};
use alive_live::LiveSession;

/// The two alternating label edits used by the feedback-latency
/// experiment (E3): each is a one-token change to render code, like the
/// paper's I1–I3 tweaks.
pub fn label_variants(src: &str) -> (String, String) {
    let a = src.replace("post \"Local\";", "post \"Nearby\";");
    let b = src.to_string();
    (a, b)
}

/// A live session on the mortgage app with `n` listings, navigated to
/// the detail page (the paper's editing context).
pub fn mortgage_live_on_detail(n: usize) -> LiveSession {
    let mut s = LiveSession::new(&mortgage::mortgage_src(n)).expect("compiles");
    s.tap_path(&[1, 0]).expect("open detail");
    s
}

/// A restart-baseline session on the mortgage app with `n` listings,
/// navigated to the detail page.
pub fn mortgage_restart_on_detail(n: usize) -> RestartSession {
    let mut s = RestartSession::new(&mortgage::mortgage_src(n)).expect("compiles");
    s.interact(NavAction::Tap(vec![1, 0])).expect("open detail");
    s
}

/// A live session on the synthetic gallery with `n` tiles, optionally
/// with the §5 render cache. Dependency-dense: every tile reads the
/// `selected` global.
pub fn gallery_session(n: usize, memo: bool) -> LiveSession {
    session_of(&gallery::gallery_src(n), memo)
}

/// A live session on the synthetic feed with `n` rows, optionally with
/// the §5 render cache. Dependency-sparse: each row reads only its own
/// item.
pub fn feed_session(n: usize, memo: bool) -> LiveSession {
    session_of(&gallery::feed_src(n), memo)
}

fn session_of(src: &str, memo: bool) -> LiveSession {
    if memo {
        LiveSession::with_memo(src).expect("compiles")
    } else {
        LiveSession::new(src).expect("compiles")
    }
}

/// One selection change on a gallery session: tap a rotating tile,
/// forcing a re-render.
pub fn gallery_select_next(session: &mut LiveSession, step: usize) {
    let n = list_global_len(session, "tiles");
    let target = 1 + (step % n.max(1));
    session.tap_path(&[target]).expect("tap tile");
}

/// One item edit on a feed session: tap a rotating row (its handler
/// bumps row 0's value), forcing a re-render that touches one row.
pub fn feed_touch(session: &mut LiveSession, step: usize) {
    let n = list_global_len(session, "items");
    let target = 1 + (step % n.max(1));
    session.tap_path(&[target]).expect("tap row");
}

fn list_global_len(session: &LiveSession, name: &str) -> usize {
    match session.system().store().get(name) {
        Some(alive_core::Value::List(xs)) => xs.len(),
        other => panic!("`{name}` is not a materialized list: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        let mut live = mortgage_live_on_detail(3);
        assert_eq!(live.system().current_page().map(|(n, _)| n), Some("detail"));
        let (a, b) = label_variants(live.source());
        assert_ne!(a, b);
        assert!(live.edit_source(&a).is_applied());

        let restart = mortgage_restart_on_detail(3);
        assert_eq!(
            restart.system().current_page().map(|(n, _)| n),
            Some("detail")
        );

        // Sparse feed: taps reuse untouched rows.
        let mut f = feed_session(8, true);
        feed_touch(&mut f, 0);
        feed_touch(&mut f, 1);
        assert!(f.memo_stats().expect("memo on").hits > 0);
        // Memoized and plain sessions show identical views.
        let mut plain = feed_session(8, false);
        feed_touch(&mut plain, 0);
        feed_touch(&mut plain, 1);
        assert_eq!(f.live_view(), plain.live_view());
        // Dense gallery: selection changes invalidate every tile.
        let mut g = gallery_session(8, true);
        gallery_select_next(&mut g, 0);
        assert!(g.live_view().contains("selected: 0"));
    }
}
