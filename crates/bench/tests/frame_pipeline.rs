//! E-frame property: a 256-step seed-replayable random walk of taps,
//! label edits, undo/redo, injected faults, and quarantined edits over
//! the gallery and feed workloads, asserting at every step that the
//! incremental frame pipeline (pointer-keyed layout cache, damage-driven
//! repaint, generation-keyed view memo) is byte-identical to a
//! from-scratch layout + paint oracle.
//!
//! Replay a failure with
//! `ALIVE_TESTKIT_SEED=0x… cargo test -p alive-bench --test frame_pipeline`.

use alive_bench::{feed_session, gallery_session};
use alive_core::Prim;
use alive_live::{EditOutcome, LiveSession};
use alive_testkit::{check, Config, FaultPlan, NoShrink, Rng};
use alive_ui::{layout, render_to_text};

const TILES: usize = 12;
const STEPS: usize = 256;

/// Workload-specific edit material: two interchangeable label variants
/// (both type-correct, used as the applied-edit toggle), a
/// type-correct-but-faulting render replacement that must quarantine,
/// and a primitive the workload evaluates (the fault-injection target).
/// The toggle and quarantine patterns are disjoint, so either edit is
/// always available regardless of the other's history.
struct Workload {
    label: &'static str,
    toggle_a: &'static str,
    toggle_b: &'static str,
    quarantine_from: &'static str,
    quarantine_to: &'static str,
    prim: Prim,
}

const GALLERY: Workload = Workload {
    label: "gallery",
    toggle_a: "\"gallery of \"",
    toggle_b: "\"showing \"",
    // A well-typed out-of-range read: render faults at the first tile.
    quarantine_from: "\"tile #\" ++ i",
    quarantine_to: "\"tile #\" ++ list.nth(tiles, 0 - 1)",
    prim: Prim::ListLength,
};

const FEED: Workload = Workload {
    label: "feed",
    toggle_a: "\" taps)\"",
    toggle_b: "\" pokes)\"",
    // A well-typed out-of-range read: render faults at the first row.
    quarantine_from: "\"row value \" ++ item",
    quarantine_to: "\"row value \" ++ list.nth(items, 0 - 1)",
    prim: Prim::ListNth,
};

/// The invariant: whatever the walk just did, the live view must equal
/// a from-scratch layout + paint of the current display tree, byte for
/// byte. When the session has no renderable tree at all, the fault
/// placeholder must at least be stable across reads.
fn check_view(label: &str, step: usize, session: &mut LiveSession) -> Result<(), String> {
    let view = session.live_view();
    match session.display_tree() {
        Some(root) => {
            let oracle = render_to_text(&layout(&root));
            if view != oracle {
                return Err(format!(
                    "{label}: incremental view diverged from the from-scratch \
                     oracle at step {step}\n--- incremental ---\n{view}\
                     --- from scratch ---\n{oracle}"
                ));
            }
        }
        None => {
            let again = session.live_view();
            if view != again {
                return Err(format!("{label}: unstable placeholder at step {step}"));
            }
        }
    }
    Ok(())
}

/// Swap between the two label variants. The outcome is deliberately not
/// asserted: a still-pending injected fault can legitimately quarantine
/// even a benign edit, and the byte-identity check below holds either
/// way.
fn toggle_edit(session: &mut LiveSession, w: &Workload) {
    let src = session.source().to_string();
    let new = if src.contains(w.toggle_a) {
        src.replace(w.toggle_a, w.toggle_b)
    } else {
        src.replace(w.toggle_b, w.toggle_a)
    };
    let _ = session.edit_source(&new);
}

/// Submit well-typed code whose first render must fault, and insist the
/// session quarantines it (reverting source and machine).
fn quarantine_edit(session: &mut LiveSession, w: &Workload, step: usize) -> Result<(), String> {
    let src = session.source().to_string();
    if !src.contains(w.quarantine_from) {
        return Err(format!(
            "{}: quarantine pattern missing at step {step} — the walk corrupted the source",
            w.label
        ));
    }
    let new = src.replace(w.quarantine_from, w.quarantine_to);
    match session.edit_source(&new) {
        EditOutcome::Quarantined { .. } => {
            if session.source() != src {
                return Err(format!(
                    "{}: quarantine at step {step} did not revert the source",
                    w.label
                ));
            }
            Ok(())
        }
        other => Err(format!(
            "{}: faulting edit at step {step} was not quarantined (applied: {})",
            w.label,
            other.is_applied()
        )),
    }
}

/// Arm a deterministic fault on an upcoming primitive evaluation or
/// transition. Installing replaces any earlier plan; counters restart.
fn inject_fault(rng: &mut Rng, session: &mut LiveSession, w: &Workload) {
    let plan = if rng.gen_bool() {
        FaultPlan::new().fail_prim(w.prim, 1 + rng.below(3) as u64)
    } else {
        FaultPlan::new().throttle_any_fuel(1 + rng.below(3) as u64, rng.below(2) as u64)
    };
    session.system_mut().set_fault_injector(plan.shared());
}

fn tap_tile(
    rng: &mut Rng,
    session: &mut LiveSession,
    w: &Workload,
    step: usize,
) -> Result<(), String> {
    // Child 0 is the header; 1..=TILES are the interactive boxes, and
    // the tree keeps that shape across every edit in the walk.
    let tile = rng.gen_range(1..TILES + 1);
    session
        .tap_path(&[tile])
        .map_err(|e| format!("{}: tap [{tile}] failed at step {step}: {e}", w.label))
}

fn walk(seed: u64) -> Result<(), String> {
    let mut rng = Rng::new(seed);
    let mut gallery = gallery_session(TILES, true);
    let mut feed = feed_session(TILES, true);
    for step in 0..STEPS {
        {
            let (session, w) = if rng.gen_bool() {
                (&mut gallery, &GALLERY)
            } else {
                (&mut feed, &FEED)
            };
            match rng.below(10) {
                0..=3 => tap_tile(&mut rng, session, w, step)?,
                4 | 5 => toggle_edit(session, w),
                6 => quarantine_edit(session, w, step)?,
                7 => {
                    if rng.gen_bool() {
                        session.undo();
                    } else {
                        session.redo();
                    }
                }
                8 => {
                    inject_fault(&mut rng, session, w);
                    tap_tile(&mut rng, session, w, step)?;
                }
                // Idle step: the checks below still read the view, so
                // this exercises the generation-keyed memo hit.
                _ => {}
            }
        }
        // Check both sessions every step — the untouched one must keep
        // returning the identical frame (a pure view-memo read).
        check_view("gallery", step, &mut gallery)?;
        check_view("feed", step, &mut feed)?;
    }
    Ok(())
}

#[test]
fn incremental_pipeline_is_byte_identical_along_a_random_walk() {
    check(
        "frame_pipeline/random_walk",
        Config::with_cases(3),
        |rng| NoShrink(rng.next_u64()),
        |input| walk(input.0),
    );
}
