//! # alive-corpus
//!
//! A seeded scenario corpus: "handles many scenarios" as a measured
//! property instead of a vibe. The corpus is 20 alive programs —
//! 5 application kinds × 4 sizes — generated deterministically from
//! per-program seeds, each carrying a manifest that pins:
//!
//! * the expected **page count**,
//! * the **event vocabulary** the program responds to (`tap`, `edit`),
//! * the number of live `example` probes it declares,
//! * a **golden first-frame hash** (FNV-1a over the settled first
//!   frame's box tree, store, and page stack).
//!
//! The generated sources and manifests are also checked in under
//! `programs/` as goldens: `same seed → byte-identical program` is a
//! test, not an assumption. Regenerate with
//! `cargo run -p alive-corpus --bin alive-corpus-gen` after changing
//! the generator (the determinism suite fails loudly until the goldens
//! match again).
//!
//! The differential, fault-tolerance, and repair harnesses iterate
//! [`corpus`] instead of a handful of hand-picked demo apps, so "works
//! on the counter" silently generalizing to "works" is off the table.

#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;

// ---------------------------------------------------------------------
// Deterministic building blocks (no external dependencies)
// ---------------------------------------------------------------------

/// A splitmix64 PRNG: tiny, seedable, and stable across platforms —
/// the corpus contract is `same seed → byte-identical program`.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..n`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A uniformly chosen element of a nonempty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// 64-bit FNV-1a over a byte string — the corpus hash function for
/// golden first-frame hashes and seed derivation.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------
// The corpus grid
// ---------------------------------------------------------------------

/// The five application kinds the paper's "many scenarios" claim gets
/// measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusKind {
    /// Editable numeric fields with a derived sum and a submit page.
    Form,
    /// A scrolling feed of rows whose taps bump per-row scores.
    Feed,
    /// A clicker game: bounded cell values, score, move counter.
    Game,
    /// Derived aggregate tiles over metric globals with a refresh.
    Dashboard,
    /// A line editor: editable string rows plus an inspect page.
    Editor,
}

impl CorpusKind {
    /// Every kind, in corpus order.
    pub fn all() -> [CorpusKind; 5] {
        [
            CorpusKind::Form,
            CorpusKind::Feed,
            CorpusKind::Game,
            CorpusKind::Dashboard,
            CorpusKind::Editor,
        ]
    }

    /// The manifest name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            CorpusKind::Form => "form",
            CorpusKind::Feed => "feed",
            CorpusKind::Game => "game",
            CorpusKind::Dashboard => "dashboard",
            CorpusKind::Editor => "editor",
        }
    }

    fn parse(text: &str) -> Option<CorpusKind> {
        CorpusKind::all().into_iter().find(|k| k.name() == text)
    }
}

/// Program scale: how many rows the main page renders (and with it how
/// much code the generator emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CorpusSize {
    /// A handful of rows — the demo-app scale.
    Small,
    /// A screenful.
    Medium,
    /// Several screenfuls.
    Large,
    /// The §5 scaling regime: recreating the tree each frame hurts.
    Huge,
}

impl CorpusSize {
    /// Every size, in corpus order.
    pub fn all() -> [CorpusSize; 4] {
        [
            CorpusSize::Small,
            CorpusSize::Medium,
            CorpusSize::Large,
            CorpusSize::Huge,
        ]
    }

    /// The manifest name of the size.
    pub fn name(self) -> &'static str {
        match self {
            CorpusSize::Small => "small",
            CorpusSize::Medium => "medium",
            CorpusSize::Large => "large",
            CorpusSize::Huge => "huge",
        }
    }

    /// Rows on the main page.
    pub fn rows(self) -> usize {
        match self {
            CorpusSize::Small => 3,
            CorpusSize::Medium => 10,
            CorpusSize::Large => 40,
            CorpusSize::Huge => 120,
        }
    }

    fn parse(text: &str) -> Option<CorpusSize> {
        CorpusSize::all().into_iter().find(|s| s.name() == text)
    }
}

/// One corpus cell: a kind, a size, and the seed its program is
/// generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Application kind.
    pub kind: CorpusKind,
    /// Program scale.
    pub size: CorpusSize,
    /// Generation seed — derived from the name, so it never drifts.
    pub seed: u64,
}

impl CorpusSpec {
    /// The canonical program name, e.g. `form-small`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.kind.name(), self.size.name())
    }
}

/// The full 5×4 corpus grid. Seeds are `fnv1a_64(name)`, so adding a
/// kind or size never reshuffles existing programs.
pub fn specs() -> Vec<CorpusSpec> {
    let mut out = Vec::with_capacity(20);
    for kind in CorpusKind::all() {
        for size in CorpusSize::all() {
            let name = format!("{}-{}", kind.name(), size.name());
            out.push(CorpusSpec {
                kind,
                size,
                seed: fnv1a_64(name.as_bytes()),
            });
        }
    }
    out
}

/// One generated corpus program.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// The grid cell it fills.
    pub spec: CorpusSpec,
    /// The generated alive source.
    pub source: String,
}

/// Generate the whole corpus in memory. Deterministic: every call (on
/// every machine) yields byte-identical sources.
pub fn corpus() -> Vec<CorpusProgram> {
    specs()
        .into_iter()
        .map(|spec| CorpusProgram {
            spec,
            source: generate(&spec),
        })
        .collect()
}

/// The checked-in goldens directory (`crates/corpus/programs`).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("programs")
}

// ---------------------------------------------------------------------
// Manifests
// ---------------------------------------------------------------------

/// What a corpus program promises about itself — checked by the
/// determinism suite against a fresh compile-and-render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Program name (`<kind>-<size>`).
    pub name: String,
    /// Application kind.
    pub kind: CorpusKind,
    /// Program scale.
    pub size: CorpusSize,
    /// Generation seed.
    pub seed: u64,
    /// Rows on the main page.
    pub rows: usize,
    /// Number of `page` items.
    pub pages: usize,
    /// Event vocabulary, sorted (`edit`, `tap`).
    pub events: Vec<String>,
    /// Number of live `example` probes.
    pub examples: usize,
    /// FNV-1a over the settled first frame (box tree + store + page
    /// stack, `Debug`-rendered — the differential suite's byte-identity
    /// key).
    pub first_frame_hash: u64,
}

impl Manifest {
    /// Serialize to the `#alive-corpus v1` key=value text format.
    pub fn to_text(&self) -> String {
        format!(
            "#alive-corpus v1\n\
             name={}\n\
             kind={}\n\
             size={}\n\
             seed={:#018x}\n\
             rows={}\n\
             pages={}\n\
             events={}\n\
             examples={}\n\
             first_frame_hash={:#018x}\n",
            self.name,
            self.kind.name(),
            self.size.name(),
            self.seed,
            self.rows,
            self.pages,
            self.events.join(","),
            self.examples,
            self.first_frame_hash,
        )
    }

    /// Parse the text format back.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending line or field.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines();
        if lines.next() != Some("#alive-corpus v1") {
            return Err("missing `#alive-corpus v1` header".to_string());
        }
        let mut name = None;
        let mut kind = None;
        let mut size = None;
        let mut seed = None;
        let mut rows = None;
        let mut pages = None;
        let mut events = None;
        let mut examples = None;
        let mut hash = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed line `{line}`"))?;
            let parse_hex = |v: &str| {
                u64::from_str_radix(v.trim_start_matches("0x"), 16)
                    .map_err(|_| format!("bad hex `{v}`"))
            };
            let parse_num = |v: &str| v.parse::<usize>().map_err(|_| format!("bad number `{v}`"));
            match key {
                "name" => name = Some(value.to_string()),
                "kind" => {
                    kind = Some(
                        CorpusKind::parse(value).ok_or_else(|| format!("bad kind `{value}`"))?,
                    );
                }
                "size" => {
                    size = Some(
                        CorpusSize::parse(value).ok_or_else(|| format!("bad size `{value}`"))?,
                    );
                }
                "seed" => seed = Some(parse_hex(value)?),
                "rows" => rows = Some(parse_num(value)?),
                "pages" => pages = Some(parse_num(value)?),
                "events" => {
                    events = Some(
                        value
                            .split(',')
                            .filter(|e| !e.is_empty())
                            .map(str::to_string)
                            .collect(),
                    );
                }
                "examples" => examples = Some(parse_num(value)?),
                "first_frame_hash" => hash = Some(parse_hex(value)?),
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        let missing = |what: &str| format!("missing `{what}`");
        Ok(Manifest {
            name: name.ok_or_else(|| missing("name"))?,
            kind: kind.ok_or_else(|| missing("kind"))?,
            size: size.ok_or_else(|| missing("size"))?,
            seed: seed.ok_or_else(|| missing("seed"))?,
            rows: rows.ok_or_else(|| missing("rows"))?,
            pages: pages.ok_or_else(|| missing("pages"))?,
            events: events.ok_or_else(|| missing("events"))?,
            examples: examples.ok_or_else(|| missing("examples"))?,
            first_frame_hash: hash.ok_or_else(|| missing("first_frame_hash"))?,
        })
    }
}

impl fmt::Display for Manifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Compile `source`, settle the first frame, and hash the observable
/// state (box tree + store + page stack) — the golden first-frame hash.
///
/// # Errors
///
/// The compile or runtime error, rendered.
pub fn first_frame_hash(source: &str) -> Result<u64, String> {
    let program = alive_core::compile(source).map_err(|e| e.to_string())?;
    let mut sys = alive_core::system::System::new(program);
    sys.run_to_stable().map_err(|e| e.to_string())?;
    let root = sys.rendered().map_err(|e| e.to_string())?.clone();
    let canon = format!("{:?}\n{:?}\n{:?}\n", root, sys.store(), sys.page_stack());
    Ok(fnv1a_64(canon.as_bytes()))
}

/// Build the full manifest for a spec: static facts from the generator
/// plus the golden hash from a fresh compile-and-render.
///
/// # Errors
///
/// The compile or runtime error from [`first_frame_hash`].
pub fn manifest_for(spec: &CorpusSpec) -> Result<Manifest, String> {
    let source = generate(spec);
    let shape = shape_of(spec.kind);
    Ok(Manifest {
        name: spec.name(),
        kind: spec.kind,
        size: spec.size,
        seed: spec.seed,
        rows: spec.size.rows(),
        pages: shape.pages,
        events: shape.events.iter().map(|e| e.to_string()).collect(),
        examples: shape.examples,
        first_frame_hash: first_frame_hash(&source)?,
    })
}

/// Static shape facts per kind (same for every size and seed).
struct Shape {
    pages: usize,
    events: &'static [&'static str],
    examples: usize,
}

fn shape_of(kind: CorpusKind) -> Shape {
    match kind {
        CorpusKind::Form => Shape {
            pages: 2,
            events: &["edit", "tap"],
            examples: 2,
        },
        CorpusKind::Feed => Shape {
            pages: 1,
            events: &["tap"],
            examples: 1,
        },
        CorpusKind::Game => Shape {
            pages: 1,
            events: &["tap"],
            examples: 2,
        },
        CorpusKind::Dashboard => Shape {
            pages: 1,
            events: &["tap"],
            examples: 3,
        },
        CorpusKind::Editor => Shape {
            pages: 2,
            events: &["edit", "tap"],
            examples: 1,
        },
    }
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

const WORDS: &[&str] = &[
    "amber", "birch", "cedar", "delta", "ember", "fjord", "grove", "heron", "iris", "juniper",
    "kelp", "lumen", "maple", "north", "opal", "pine", "quartz", "reef", "slate", "tundra",
];

/// Generate the alive source for one corpus cell. Pure function of the
/// spec: `generate(s) == generate(s)` byte-for-byte, on every platform.
pub fn generate(spec: &CorpusSpec) -> String {
    let mut rng = Rng::new(spec.seed);
    let n = spec.size.rows();
    let name = spec.name();
    match spec.kind {
        CorpusKind::Form => gen_form(&mut rng, &name, n),
        CorpusKind::Feed => gen_feed(&mut rng, &name, n),
        CorpusKind::Game => gen_game(&mut rng, &name, n),
        CorpusKind::Dashboard => gen_dashboard(&mut rng, &name, n),
        CorpusKind::Editor => gen_editor(&mut rng, &name, n),
    }
}

fn gen_form(rng: &mut Rng, name: &str, n: usize) -> String {
    let title = *rng.choose(WORDS);
    let cap = 1000 + rng.below(9000);
    let probe = rng.below(50);
    format!(
        r#"// corpus: {name} — editable fields, a derived sum, a submit page.
global fields : list number = []
global focus : number = 0
global submitted : number = 0

fun field_sum() : number pure {{
    let total = 0;
    foreach v in fields {{ total := total + v; }}
    total
}}

fun field_cap(v : number) : number pure {{
    math.min(math.max(v, 0), {cap})
}}

example sum_twice = field_sum() * 2 expect field_sum() + field_sum()
example cap_idempotent = field_cap(field_cap({probe})) expect field_cap({probe})

page start() {{
    init {{ fields := list.range(0, {n}); }}
    render {{
        boxed {{
            post "{title} form (" ++ list.length(fields) ++ " fields, sum " ++ field_sum() ++ ")";
            box.background := colors.light_gray;
            box.padding := 1;
        }}
        foreach i in list.range(0, list.length(fields)) {{
            boxed {{
                post "field " ++ i ++ ": " ++ list.nth(fields, i);
                box.border := 1;
                on edited(text : string) {{
                    let v = str.to_number(text);
                    fields := list.set(fields, i, field_cap(v));
                }}
                on tap {{ focus := i; }}
            }}
        }}
        boxed {{
            post "[ submit ]";
            box.border := 1;
            on tap {{
                submitted := submitted + 1;
                push summary(field_sum());
            }}
        }}
        boxed {{ post "focused " ++ focus ++ ", submitted " ++ submitted; }}
    }}
}}

page summary(total : number) {{
    render {{
        boxed {{ post "{title} total: " ++ total; box.font_size := 2; }}
        boxed {{ post "[ back ]"; box.border := 1; on tap {{ pop; }} }}
    }}
}}
"#
    )
}

fn gen_feed(rng: &mut Rng, name: &str, n: usize) -> String {
    let title = *rng.choose(WORDS);
    let step = 1 + rng.below(8);
    let probe = rng.below(40);
    format!(
        r#"// corpus: {name} — a feed of rows; taps bump per-row scores.
global ids : list number = []
global scores : list number = []
global taps : number = 0
global hot : number = 0

fun rank(v : number) : number pure {{
    math.max(v, hot)
}}

example rank_absorbs = rank(math.max({probe}, hot)) expect rank({probe})

page start() {{
    init {{
        ids := list.range(0, {n});
        scores := list.range(0, {n});
    }}
    render {{
        boxed {{
            post "{title} feed (" ++ taps ++ " taps, hot " ++ hot ++ ")";
            box.background := colors.light_gray;
        }}
        foreach i in ids {{
            boxed {{
                post "story " ++ i ++ " rank " ++ rank(list.nth(scores, i));
                on tap {{
                    taps := taps + 1;
                    hot := math.max(hot, list.nth(scores, i));
                    scores := list.set(scores, i, list.nth(scores, i) + {step});
                }}
            }}
        }}
    }}
}}
"#
    )
}

fn gen_game(rng: &mut Rng, name: &str, n: usize) -> String {
    let title = *rng.choose(WORDS);
    let gain = 1 + rng.below(9);
    let cap = 10_000 + rng.below(10_000);
    format!(
        r#"// corpus: {name} — a clicker game with bounded cells and a score.
global board : list number = []
global cells : list number = []
global score : number = 0
global moves : number = 0

fun clamp(v : number) : number pure {{
    math.min(math.max(v, 0), {cap})
}}

fun best() : number pure {{
    let m = 0;
    foreach c in cells {{ m := math.max(m, c); }}
    m
}}

example best_in_bounds = clamp(best()) expect best()
example score_signed = math.abs(score) expect score

page start() {{
    init {{
        board := list.range(0, {n});
        cells := list.range(0, {n});
    }}
    render {{
        boxed {{
            post "{title} game — score " ++ score ++ ", moves " ++ moves ++ ", best " ++ best();
            box.background := colors.light_gray;
        }}
        foreach i in board {{
            boxed {{
                post "cell " ++ i ++ " = " ++ list.nth(cells, i);
                on tap {{
                    moves := moves + 1;
                    cells := list.set(cells, i, clamp(list.nth(cells, i) + {gain}));
                    score := score + math.abs({gain});
                }}
            }}
        }}
    }}
}}
"#
    )
}

fn gen_dashboard(rng: &mut Rng, name: &str, n: usize) -> String {
    let title = *rng.choose(WORDS);
    let a0 = rng.below(90);
    let b0 = rng.below(90);
    let d1 = 1 + rng.below(6);
    let d2 = 1 + rng.below(6);
    let tiles = 2 + rng.below(4);
    format!(
        r#"// corpus: {name} — derived aggregate tiles over metric globals.
global metric_a : number = {a0}
global metric_b : number = {b0}
global samples : list number = []
global refreshes : number = 0

fun lo() : number pure {{
    math.min(metric_a, metric_b)
}}

fun hi() : number pure {{
    math.max(metric_a, metric_b)
}}

fun spread() : number pure {{
    hi() - lo()
}}

fun total() : number pure {{
    let t = 0;
    foreach s in samples {{ t := t + s; }}
    t
}}

example lo_of_both = math.min(lo(), hi()) expect lo()
example spread_signed = math.abs(spread()) expect spread()
example total_twice = total() * 2 expect total() + total()

page start() {{
    init {{ samples := list.range(0, {n}); }}
    render {{
        boxed {{
            post "{title} dashboard — lo " ++ lo() ++ ", hi " ++ hi() ++ ", spread " ++ spread();
            box.background := colors.light_gray;
            box.padding := 1;
        }}
        boxed {{ post "total " ++ total() ++ " over " ++ list.length(samples) ++ " samples"; }}
        for t in 0 .. {tiles} {{
            boxed {{ post "tile " ++ t ++ ": " ++ (t * spread() + lo()); box.border := 1; }}
        }}
        foreach s in samples {{
            boxed {{ post "sample " ++ s ++ " -> " ++ (s + spread()); }}
        }}
        boxed {{
            post "[ refresh ]";
            box.border := 1;
            on tap {{
                refreshes := refreshes + 1;
                metric_a := metric_a + {d1};
                metric_b := metric_b + {d2};
                samples := list.append(samples, refreshes);
            }}
        }}
    }}
}}
"#
    )
}

fn gen_editor(rng: &mut Rng, name: &str, n: usize) -> String {
    let title = *rng.choose(WORDS);
    let clip = *rng.choose(WORDS);
    let lines: Vec<String> = (0..n)
        .map(|_| format!("\"{}\"", rng.choose(WORDS)))
        .collect();
    let lines = lines.join(", ");
    format!(
        r#"// corpus: {name} — editable string rows plus an inspect page.
global lines : list string = [{lines}]
global edits : number = 0
global clip : string = "{clip}"

fun shout(s : string) : string pure {{
    str.upper(s)
}}

example shout_idempotent = shout(shout(clip)) expect shout(clip)

page start() {{
    init {{ }}
    render {{
        boxed {{
            post "{title} editor (" ++ list.length(lines) ++ " lines, " ++ edits ++ " edits)";
            box.background := colors.light_gray;
        }}
        foreach i in list.range(0, list.length(lines)) {{
            boxed {{
                post i ++ ": " ++ list.nth(lines, i);
                box.border := 1;
                on edited(text : string) {{
                    edits := edits + 1;
                    lines := list.set(lines, i, text);
                }}
                on tap {{ push inspect(list.nth(lines, i)); }}
            }}
        }}
        boxed {{
            post "[ append ]";
            box.border := 1;
            on tap {{
                edits := edits + 1;
                lines := list.append(lines, clip);
            }}
        }}
    }}
}}

page inspect(line : string) {{
    render {{
        boxed {{ post shout(line); box.font_size := 2; }}
        boxed {{ post "length " ++ str.len(line); }}
        boxed {{ post "[ close ]"; box.border := 1; on tap {{ pop; }} }}
    }}
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete() {
        let specs = specs();
        assert_eq!(specs.len(), 20);
        let names: std::collections::HashSet<String> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 20, "names are unique");
    }

    #[test]
    fn generation_is_deterministic() {
        for spec in specs() {
            assert_eq!(generate(&spec), generate(&spec), "{}", spec.name());
        }
    }

    #[test]
    fn every_program_compiles_and_renders() {
        for program in corpus() {
            let hash = first_frame_hash(&program.source)
                .unwrap_or_else(|e| panic!("{}: {e}", program.spec.name()));
            assert_ne!(hash, 0, "{}", program.spec.name());
        }
    }

    #[test]
    fn manifests_round_trip() {
        for spec in specs().into_iter().take(5) {
            let manifest = manifest_for(&spec).expect("manifest");
            let parsed = Manifest::parse(&manifest.to_text()).expect("parses");
            assert_eq!(parsed, manifest);
        }
    }

    #[test]
    fn examples_probe_as_declared() {
        for program in corpus() {
            let compiled = alive_core::compile(&program.source)
                .unwrap_or_else(|e| panic!("{}: {e}", program.spec.name()));
            let shape = shape_of(program.spec.kind);
            assert_eq!(
                compiled.examples().len(),
                shape.examples,
                "{} example count",
                program.spec.name()
            );
        }
    }
}
