//! Regenerate the checked-in corpus goldens (`programs/*.alive` and
//! `programs/*.manifest`) from the generator. Run after any generator
//! change; the determinism suite fails until the goldens match again.
//!
//! ```text
//! cargo run -p alive-corpus --bin alive-corpus-gen
//! ```

use alive_corpus::{corpus_dir, generate, manifest_for, specs};

fn main() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create programs/");
    let mut written = 0usize;
    for spec in specs() {
        let name = spec.name();
        let source = generate(&spec);
        let manifest =
            manifest_for(&spec).unwrap_or_else(|e| panic!("{name} does not compile/render: {e}"));
        std::fs::write(dir.join(format!("{name}.alive")), &source).expect("write program");
        std::fs::write(dir.join(format!("{name}.manifest")), manifest.to_text())
            .expect("write manifest");
        println!(
            "{name}: {} bytes, hash {:#018x}",
            source.len(),
            manifest.first_frame_hash
        );
        written += 1;
    }
    println!("{written} programs written to {}", dir.display());
}
