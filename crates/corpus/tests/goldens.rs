//! Corpus determinism goldens: the checked-in `programs/` files are
//! the byte-for-byte output of the generator, and every manifest's
//! golden first-frame hash matches a fresh compile-and-render.
//!
//! If a generator change fails this suite, regenerate with
//! `cargo run -p alive-corpus --bin alive-corpus-gen` and review the
//! golden diff like any other code change.

use alive_corpus::{corpus_dir, first_frame_hash, generate, manifest_for, specs, Manifest};

#[test]
fn checked_in_programs_match_the_generator_byte_for_byte() {
    for spec in specs() {
        let name = spec.name();
        let path = corpus_dir().join(format!("{name}.alive"));
        let checked_in = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden {path:?}: {e}"));
        assert_eq!(
            checked_in,
            generate(&spec),
            "{name}: golden drifted — regenerate with alive-corpus-gen"
        );
    }
}

#[test]
fn checked_in_manifests_match_fresh_generation() {
    for spec in specs() {
        let name = spec.name();
        let path = corpus_dir().join(format!("{name}.manifest"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing manifest {path:?}: {e}"));
        let checked_in = Manifest::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let fresh = manifest_for(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            checked_in, fresh,
            "{name}: manifest drifted — regenerate with alive-corpus-gen"
        );
    }
}

#[test]
fn golden_first_frame_hashes_pin_the_first_frame() {
    for spec in specs() {
        let name = spec.name();
        let text = std::fs::read_to_string(corpus_dir().join(format!("{name}.manifest")))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let manifest = Manifest::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Hash the *checked-in* source, not a regeneration: the golden
        // pins what is in the repository.
        let source = std::fs::read_to_string(corpus_dir().join(format!("{name}.alive")))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let hash = first_frame_hash(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            hash, manifest.first_frame_hash,
            "{name}: first frame diverged from its golden hash"
        );
    }
}

#[test]
fn manifest_shape_facts_hold_against_the_source() {
    for spec in specs() {
        let name = spec.name();
        let source = generate(&spec);
        let manifest = manifest_for(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let count = |needle: &str| source.matches(needle).count();
        assert_eq!(count("\npage "), manifest.pages, "{name}: page count");
        assert_eq!(
            count("example "),
            manifest.examples,
            "{name}: example count"
        );
        assert_eq!(
            manifest.events.contains(&"tap".to_string()),
            source.contains("on tap"),
            "{name}: tap vocabulary"
        );
        assert_eq!(
            manifest.events.contains(&"edit".to_string()),
            source.contains("on edited"),
            "{name}: edit vocabulary"
        );
        let mut sorted = manifest.events.clone();
        sorted.sort();
        assert_eq!(sorted, manifest.events, "{name}: events are sorted");
    }
}
