//! A minimal shrinking property-test harness.
//!
//! [`check`] runs a property over N generated cases from one seed. On
//! the first failure it greedily shrinks the input via the [`Shrink`]
//! trait (smaller vectors, smaller integers, shorter strings), re-runs
//! the property on each candidate, and panics with the *minimal* still-
//! failing counterexample plus a replayable seed:
//!
//! ```text
//! ALIVE_TESTKIT_SEED=0x1234abcd cargo test -p its-alive --test foo
//! ```
//!
//! Panics inside the property count as failures (they are caught and
//! their payload becomes the failure message), so `assert!`-style
//! properties work unchanged. Everything is deterministic: the same
//! seed always generates the same cases and shrinks to the same
//! minimal counterexample.

use crate::rng::Rng;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Default base seed when `ALIVE_TESTKIT_SEED` is unset. Fixed, so CI
/// runs are reproducible by construction.
pub const DEFAULT_SEED: u64 = 0xA11E_5EED_0000_2013;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// How many generated cases to run.
    pub cases: u32,
    /// Base seed for the whole run (env `ALIVE_TESTKIT_SEED` wins).
    pub seed: u64,
    /// Upper bound on shrink-candidate evaluations.
    pub max_shrink_iters: u32,
}

impl Config {
    /// `cases` cases from the env seed (or [`DEFAULT_SEED`]).
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            seed: seed_from_env(),
            max_shrink_iters: 4096,
        }
    }

    /// Override the base seed (the env variable still wins in
    /// [`check`]; this is for programmatic runs).
    pub fn seeded(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }
}

/// The seed to use: `ALIVE_TESTKIT_SEED` (decimal or `0x…` hex) if set
/// and parseable, else [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    match std::env::var("ALIVE_TESTKIT_SEED") {
        Ok(text) => parse_seed(&text).unwrap_or(DEFAULT_SEED),
        Err(_) => DEFAULT_SEED,
    }
}

fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Types that know how to propose strictly "smaller" versions of
/// themselves. Candidates are tried in order; the first that still
/// fails the property is taken (greedy descent).
pub trait Shrink: Sized {
    /// Candidate smaller values. May be empty (no shrinking).
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v.saturating_sub(1)] {
                    if c < v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let n = self.chars().count();
        if n == 0 {
            return Vec::new();
        }
        let chars: Vec<char> = self.chars().collect();
        let mut out = vec![String::new()];
        if n > 1 {
            out.push(chars[..n / 2].iter().collect());
            out.push(chars[n / 2..].iter().collect());
        }
        // Drop single characters (capped so shrinking stays cheap).
        for i in 0..n.min(24) {
            let mut c = chars.clone();
            c.remove(i);
            out.push(c.into_iter().collect());
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        // Drop one element at a time.
        for i in 0..n.min(24) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Shrink one element at a time.
        for i in 0..n.min(24) {
            for smaller in self[i].shrink() {
                let mut v = self.clone();
                v[i] = smaller;
                out.push(v);
            }
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone(), self.2.clone()))
            .collect();
        out.extend(
            self.1
                .shrink()
                .into_iter()
                .map(|b| (self.0.clone(), b, self.2.clone())),
        );
        out.extend(
            self.2
                .shrink()
                .into_iter()
                .map(|c| (self.0.clone(), self.1.clone(), c)),
        );
        out
    }
}

/// Opt-out wrapper: a value whose generator invariants shrinking would
/// destroy (e.g. "this string is a well-typed program").
#[derive(Clone, PartialEq, Eq)]
pub struct NoShrink<T>(pub T);

impl<T> Shrink for NoShrink<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for NoShrink<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A fully shrunk failure report.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// Base seed of the run (replay with `ALIVE_TESTKIT_SEED`).
    pub seed: u64,
    /// 0-based index of the failing case.
    pub case: u32,
    /// The input exactly as generated.
    pub original: T,
    /// The minimal still-failing input after shrinking.
    pub minimal: T,
    /// How many accepted shrink steps led to `minimal`.
    pub shrink_steps: u32,
    /// Failure message (returned `Err` or caught panic payload) of the
    /// minimal input.
    pub message: String,
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}
static INSTALL_HOOK: Once = Once::new();

/// Install (once) a panic hook that stays silent while this harness is
/// probing a property. The default hook still fires for every other
/// panic on every other thread.
fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Run the property once, converting a panic into `Err`.
fn run_one<T, P>(prop: &P, input: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(input)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Like [`check`], but returns the failure instead of panicking — the
/// hook for tests *about* the harness (determinism of generation and
/// shrinking) and for tooling.
pub fn check_captured<T, G, P>(cfg: &Config, generate: G, prop: P) -> Option<Failure<T>>
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut master = Rng::new(cfg.seed);
    for case in 0..cfg.cases {
        let mut rng = master.fork();
        let input = generate(&mut rng);
        if let Err(first_message) = run_one(&prop, &input) {
            let (minimal, message, shrink_steps) =
                shrink_failure(&prop, input.clone(), first_message, cfg.max_shrink_iters);
            return Some(Failure {
                seed: cfg.seed,
                case,
                original: input,
                minimal,
                shrink_steps,
                message,
            });
        }
    }
    None
}

/// Greedy shrink: repeatedly take the first candidate that still fails.
fn shrink_failure<T, P>(
    prop: &P,
    mut current: T,
    mut message: String,
    max_iters: u32,
) -> (T, String, u32)
where
    T: Clone + std::fmt::Debug + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0u32;
    let mut budget = max_iters;
    'outer: loop {
        for candidate in current.shrink() {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(msg) = run_one(prop, &candidate) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, message, steps)
}

/// Run `cases` generated inputs through `prop`; on failure, shrink and
/// panic with the minimal counterexample and a replayable seed.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) if any case fails.
pub fn check<T, G, P>(name: &str, cfg: Config, generate: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    if let Some(failure) = check_captured(&cfg, generate, prop) {
        panic!(
            "property `{name}` failed at case {}/{}\n\
             minimal counterexample (after {} shrink steps):\n  {:?}\n\
             failure: {}\n\
             original input:\n  {:?}\n\
             replay with: ALIVE_TESTKIT_SEED={:#x} cargo test",
            failure.case + 1,
            cfg.cases,
            failure.shrink_steps,
            failure.minimal,
            failure.message,
            failure.original,
            failure.seed,
        );
    }
}

/// Assertion helper mirroring `prop_assert!`: early-returns an `Err`
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Assertion helper mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_returns_none() {
        let cfg = Config::with_cases(50).seeded(1);
        let failure = check_captured(
            &cfg,
            |rng| rng.below(100),
            |&n: &usize| {
                if n < 100 {
                    Ok(())
                } else {
                    Err("impossible".into())
                }
            },
        );
        assert!(failure.is_none());
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Property: all numbers are < 10. Minimal counterexample: 10.
        let cfg = Config::with_cases(200).seeded(2);
        let failure = check_captured(
            &cfg,
            |rng| rng.below(1000),
            |&n: &usize| {
                if n < 10 {
                    Ok(())
                } else {
                    Err(format!("{n} too big"))
                }
            },
        )
        .expect("must fail");
        assert_eq!(failure.minimal, 10, "greedy shrink reaches the boundary");
        assert!(failure.message.contains("too big"));
    }

    #[test]
    fn vectors_shrink_to_minimal_length() {
        // Property: no vector contains an element >= 7.
        let cfg = Config::with_cases(200).seeded(3);
        let failure = check_captured(
            &cfg,
            |rng| {
                let len = rng.below(20);
                (0..len).map(|_| rng.below(10)).collect::<Vec<usize>>()
            },
            |v: &Vec<usize>| {
                if v.iter().all(|&x| x < 7) {
                    Ok(())
                } else {
                    Err("contains big element".into())
                }
            },
        )
        .expect("must fail");
        assert_eq!(failure.minimal, vec![7], "one minimal offending element");
    }

    #[test]
    fn panics_are_caught_as_failures() {
        let cfg = Config::with_cases(10).seeded(4);
        let failure = check_captured(
            &cfg,
            |rng| rng.below(5),
            |&n: &usize| {
                assert!(n > 100, "boom {n}");
                Ok(())
            },
        )
        .expect("must fail");
        assert!(failure.message.contains("boom"), "{}", failure.message);
        assert_eq!(failure.minimal, 0, "integers shrink to zero");
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed(" 0XFF "), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }
}
