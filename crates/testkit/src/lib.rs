//! # alive-testkit
//!
//! The workspace's hermetic, zero-external-dependency test and bench
//! kit. Three pieces:
//!
//! * [`rng`] — a deterministic PRNG (SplitMix64 seeding xoshiro256\*\*)
//!   with `gen_range` / `choose` / `shuffle` / string helpers;
//! * [`prop`] — a minimal shrinking property-test harness: N cases
//!   from one seed, greedy shrinking on failure, replayable via
//!   `ALIVE_TESTKIT_SEED=… cargo test`;
//! * [`bench`] — a warmup + median-of-K micro-bench timer emitting
//!   JSON, driving the `harness = false` bench targets that used to
//!   need Criterion;
//! * [`fault`] — a deterministic fault injector for `alive-core`
//!   systems: chosen primitives fail, or transitions run out of fuel,
//!   on exactly the Nth call.
//!
//! Everything resolves, builds, and runs with zero network access —
//! the point is that `cargo test` works in a sealed environment and
//! produces the same cases every run.

#![warn(missing_docs)]

pub mod bench;
pub mod fault;
pub mod prop;
pub mod rng;

pub use bench::{Bench, BenchResult};
pub use fault::FaultPlan;
pub use prop::{check, check_captured, Config, Failure, NoShrink, Shrink};
pub use rng::Rng;
