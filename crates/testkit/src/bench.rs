//! A micro-bench timer harness: warmup, then K samples of adaptively
//! sized iteration batches, reporting the median ns/iter as JSON on
//! stdout. A zero-dependency stand-in for Criterion, driving the same
//! `harness = false` bench targets.
//!
//! Mode selection mirrors Cargo's calling conventions:
//!
//! * `cargo bench` passes `--bench` → full measurement;
//! * `cargo test` (which also builds and runs bench targets) passes no
//!   `--bench` → *smoke mode*: every closure runs once, so benches are
//!   correctness-checked on every test run without burning time;
//! * `ALIVE_BENCH_FULL=1` forces full measurement regardless.
//!
//! Any non-flag CLI argument is a substring filter on bench names.

use std::time::{Duration, Instant};

/// One bench's measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name (`group/name/param`).
    pub name: String,
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

/// A bench group: create with [`Bench::from_args`], register benches
/// with [`Bench::bench`], print the JSON report with [`Bench::finish`].
#[derive(Debug)]
pub struct Bench {
    group: String,
    warmup: Duration,
    sample_time: Duration,
    samples: usize,
    full: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Build a harness for `group`, reading mode and filter from the
    /// process arguments (see module docs).
    pub fn from_args(group: &str) -> Bench {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let full = args.iter().any(|a| a == "--bench")
            || std::env::var("ALIVE_BENCH_FULL").is_ok_and(|v| v == "1");
        let filter = args.into_iter().find(|a| !a.starts_with("--"));
        Bench {
            group: group.to_string(),
            warmup: Duration::from_millis(60),
            sample_time: Duration::from_millis(12),
            samples: 15,
            full,
            filter,
            results: Vec::new(),
        }
    }

    /// Override the warmup budget (full mode only).
    pub fn warmup(mut self, warmup: Duration) -> Bench {
        self.warmup = warmup;
        self
    }

    /// Override the per-sample time budget (full mode only).
    pub fn sample_time(mut self, sample_time: Duration) -> Bench {
        self.sample_time = sample_time;
        self
    }

    /// Override the sample count K (median-of-K; full mode only).
    pub fn samples(mut self, samples: usize) -> Bench {
        self.samples = samples.max(1);
        self
    }

    /// Whether the harness is doing full measurement (vs smoke mode).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Time `f`, recording a result under `group/name`. In smoke mode
    /// the closure runs exactly once.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let full_name = format!("{}/{}", self.group, name);
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        if !self.full {
            std::hint::black_box(f());
            self.results.push(BenchResult {
                name: full_name,
                median_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
                samples: 0,
                iters: 1,
            });
            return;
        }

        // Warmup, measuring a rough per-iteration cost as we go.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.warmup || warmup_iters == 0 {
            std::hint::black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;

        // Size the batches so one sample ≈ sample_time.
        let iters = ((self.sample_time.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64)
            .clamp(1, 10_000_000);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median = if sample_ns.len() % 2 == 1 {
            sample_ns[sample_ns.len() / 2]
        } else {
            let hi = sample_ns.len() / 2;
            (sample_ns[hi - 1] + sample_ns[hi]) / 2.0
        };
        let result = BenchResult {
            name: full_name,
            median_ns: median,
            min_ns: sample_ns[0],
            max_ns: *sample_ns.last().expect("samples >= 1"),
            samples: sample_ns.len(),
            iters,
        };
        eprintln!(
            "{:<48} {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} × {} iters)",
            result.name,
            result.median_ns,
            result.min_ns,
            result.max_ns,
            result.samples,
            result.iters,
        );
        self.results.push(result);
    }

    /// Print the JSON report to stdout and return the results.
    pub fn finish(self) -> Vec<BenchResult> {
        println!("{}", self.to_json());
        self.results
    }

    /// The report as a single JSON object (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"group\":{},\"mode\":\"{}\",\"benches\":[",
            json_string(&self.group),
            if self.full { "full" } else { "smoke" },
        ));
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters\":{}}}",
                json_string(&r.name),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                r.iters,
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_harness(group: &str) -> Bench {
        // Unit tests must not depend on process args: force smoke mode.
        Bench {
            group: group.to_string(),
            warmup: Duration::from_millis(1),
            sample_time: Duration::from_millis(1),
            samples: 3,
            full: false,
            filter: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn smoke_mode_runs_each_closure_once() {
        let mut calls = 0u32;
        let mut b = smoke_harness("g");
        b.bench("once", || calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.results.len(), 1);
        assert_eq!(b.results[0].name, "g/once");
    }

    #[test]
    fn full_mode_measures_and_reports_medians() {
        let mut b = smoke_harness("g");
        b.full = true;
        b.warmup = Duration::from_micros(200);
        b.sample_time = Duration::from_micros(100);
        let mut acc = 0u64;
        b.bench("work", || {
            acc = acc.wrapping_add(std::hint::black_box(17));
        });
        let r = &b.results[0];
        assert!(r.median_ns >= 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert_eq!(r.samples, 3);
        assert!(r.iters >= 1);
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut b = smoke_harness("quote\"group");
        b.bench("a/1", || 1 + 1);
        let json = b.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"quote\\\"group\""));
        assert!(json.contains("\"mode\":\"smoke\""));
        assert!(json.contains("\"name\":\"quote\\\"group/a/1\""));
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut b = smoke_harness("g");
        b.filter = Some("keep".to_string());
        let mut ran = Vec::new();
        b.bench("keep_me", || ran.push("keep"));
        b.bench("drop_me", || ran.push("drop"));
        assert_eq!(ran, vec!["keep"]);
        assert_eq!(b.results.len(), 1);
    }
}
