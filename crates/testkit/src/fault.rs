//! Deterministic fault injection for `alive-core` systems.
//!
//! A [`FaultPlan`] implements [`alive_core::FaultInjector`] and makes
//! chosen primitives fail, or chosen transitions run out of fuel, on
//! exactly the Nth call — so fault-containment tests are reproducible
//! down to the call count. Install one with
//! [`alive_core::system::System::set_fault_injector`]:
//!
//! ```
//! use alive_core::{compile, system::System, Prim, TransitionKind};
//! use alive_testkit::FaultPlan;
//!
//! let mut sys = System::new(compile(
//!     "page start() { render { boxed { post \"hi\"; } } }",
//! ).expect("compiles"));
//! // The second render runs with 1 fuel and faults; the first is fine.
//! let plan = FaultPlan::new()
//!     .throttle_fuel(TransitionKind::Render, 2, 1)
//!     .shared();
//! sys.set_fault_injector(plan.clone());
//! sys.run_to_stable().expect("first render survives");
//! assert_eq!(plan.lock().unwrap().throttled(), 0);
//! ```

use alive_core::prim::{Prim, PrimError};
use alive_core::{FaultInjector, TransitionKind};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A rule making one primitive fail on its Nth evaluation (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrimRule {
    prim: Prim,
    on_call: u64,
}

/// A rule replacing the fuel budget of the Nth transition of a kind
/// (1-based; `kind = None` counts transitions of every kind together).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FuelRule {
    kind: Option<TransitionKind>,
    on_call: u64,
    fuel: u64,
}

/// A deterministic fault-injection plan: primitive failures and fuel
/// throttles that fire on exact call counts.
///
/// The plan is *stateful* (it counts calls), so share one instance
/// between the test and the [`alive_core::system::System`] via
/// [`FaultPlan::shared`] to observe what fired.
#[derive(Debug, Default)]
pub struct FaultPlan {
    prim_rules: Vec<PrimRule>,
    fuel_rules: Vec<FuelRule>,
    prim_calls: BTreeMap<Prim, u64>,
    kind_calls: BTreeMap<&'static str, u64>,
    any_calls: u64,
    injected: u64,
    throttled: u64,
}

fn kind_key(kind: TransitionKind) -> &'static str {
    match kind {
        TransitionKind::Init => "init",
        TransitionKind::Handler => "handler",
        TransitionKind::Render => "render",
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Make `prim` fail with [`PrimError::Injected`] on its `on_call`th
    /// evaluation (1-based) across the whole system run.
    #[must_use]
    pub fn fail_prim(mut self, prim: Prim, on_call: u64) -> Self {
        self.prim_rules.push(PrimRule { prim, on_call });
        self
    }

    /// Run the `on_call`th transition of `kind` (1-based) with `fuel`
    /// instead of the configured budget — `fuel` small enough makes the
    /// transition deterministically exhaust its fuel.
    #[must_use]
    pub fn throttle_fuel(mut self, kind: TransitionKind, on_call: u64, fuel: u64) -> Self {
        self.fuel_rules.push(FuelRule {
            kind: Some(kind),
            on_call,
            fuel,
        });
        self
    }

    /// Like [`FaultPlan::throttle_fuel`], but counting transitions of
    /// *every* kind together.
    #[must_use]
    pub fn throttle_any_fuel(mut self, on_call: u64, fuel: u64) -> Self {
        self.fuel_rules.push(FuelRule {
            kind: None,
            on_call,
            fuel,
        });
        self
    }

    /// Wrap the plan for sharing between a test and a `System`.
    pub fn shared(self) -> Arc<Mutex<FaultPlan>> {
        Arc::new(Mutex::new(self))
    }

    /// How many primitive faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// How many transitions have run with a throttled fuel budget.
    pub fn throttled(&self) -> u64 {
        self.throttled
    }

    /// Total primitive evaluations observed (all primitives).
    pub fn prim_calls(&self) -> u64 {
        self.prim_calls.values().sum()
    }

    /// Total transitions observed.
    pub fn transitions(&self) -> u64 {
        self.any_calls
    }
}

impl FaultInjector for FaultPlan {
    fn fuel_for(&mut self, kind: TransitionKind, default_fuel: u64) -> u64 {
        self.any_calls += 1;
        let per_kind = self.kind_calls.entry(kind_key(kind)).or_insert(0);
        *per_kind += 1;
        let per_kind = *per_kind;
        let any = self.any_calls;
        let matched = self.fuel_rules.iter().find(|r| match r.kind {
            Some(k) => k == kind && r.on_call == per_kind,
            None => r.on_call == any,
        });
        match matched {
            Some(rule) => {
                self.throttled += 1;
                rule.fuel
            }
            None => default_fuel,
        }
    }

    fn before_prim(&mut self, prim: Prim) -> Option<PrimError> {
        let calls = self.prim_calls.entry(prim).or_insert(0);
        *calls += 1;
        let calls = *calls;
        if self
            .prim_rules
            .iter()
            .any(|r| r.prim == prim && r.on_call == calls)
        {
            self.injected += 1;
            return Some(PrimError::Injected(prim));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::system::System;
    use alive_core::{compile, FaultKind, RuntimeError, Value};

    const APP: &str = r#"
        global total : number = 0
        page start() {
            render {
                boxed {
                    post "total " ++ total;
                    on tap { total := total + math.abs(0 - 5); }
                }
            }
        }"#;

    #[test]
    fn nth_prim_call_faults_and_earlier_ones_do_not() {
        let mut sys = System::new(compile(APP).expect("compiles"));
        let plan = FaultPlan::new().fail_prim(Prim::MathAbs, 2).shared();
        sys.set_fault_injector(plan.clone());
        sys.run_to_stable().expect("starts");

        // First tap: math.abs call #1 — untouched.
        sys.tap(&[0]).expect("tap");
        sys.run_to_stable().expect("handler runs");
        assert_eq!(sys.store().get("total"), Some(&Value::Number(5.0)));
        assert_eq!(plan.lock().unwrap().injected(), 0);

        // Second tap: call #2 — injected failure, store rolled back.
        sys.tap(&[0]).expect("tap");
        let fault = sys.run_to_stable().expect_err("injected");
        assert_eq!(fault.kind, FaultKind::Handler);
        assert!(matches!(
            fault.error,
            RuntimeError::Prim(PrimError::Injected(Prim::MathAbs))
        ));
        assert_eq!(sys.store().get("total"), Some(&Value::Number(5.0)));
        assert_eq!(plan.lock().unwrap().injected(), 1);

        // Third tap: call #3 — the rule fired once, all clear again.
        sys.tap(&[0]).expect("tap");
        sys.run_to_stable().expect("handler runs");
        assert_eq!(sys.store().get("total"), Some(&Value::Number(10.0)));
    }

    #[test]
    fn nth_transition_fuel_throttle_is_exact() {
        let mut sys = System::new(compile(APP).expect("compiles"));
        // Renders count 1, 2, 3...; starve the second one only.
        let plan = FaultPlan::new()
            .throttle_fuel(TransitionKind::Render, 2, 1)
            .shared();
        sys.set_fault_injector(plan.clone());
        sys.run_to_stable().expect("first render is fine");

        sys.tap(&[0]).expect("tap");
        let fault = sys.run_to_stable().expect_err("second render starved");
        assert_eq!(fault.kind, FaultKind::Render);
        assert_eq!(fault.fuel_limit, 1);
        assert!(matches!(fault.error, RuntimeError::FuelExhausted));
        assert_eq!(plan.lock().unwrap().throttled(), 1);
        // The handler committed; only the render was rolled back.
        assert_eq!(sys.store().get("total"), Some(&Value::Number(5.0)));

        // The machine recovers: invalidate and re-render (render #3).
        sys.tap(&[0]).expect("stale tree is interactive");
        sys.run_to_stable().expect("third render is fine");
        assert_eq!(sys.store().get("total"), Some(&Value::Number(10.0)));
    }

    #[test]
    fn counters_are_deterministic() {
        let run = || {
            let mut sys = System::new(compile(APP).expect("compiles"));
            let plan = FaultPlan::new().shared();
            sys.set_fault_injector(plan.clone());
            sys.run_to_stable().expect("starts");
            sys.tap(&[0]).expect("tap");
            sys.run_to_stable().expect("runs");
            let p = plan.lock().unwrap();
            (p.prim_calls(), p.transitions())
        };
        assert_eq!(run(), run());
        assert!(run().1 >= 3, "startup + handler + renders");
    }
}
