//! A small deterministic PRNG: a SplitMix64 seeder feeding a
//! xoshiro256\*\* core (Blackman & Vigna). Not cryptographic — its job
//! is to make every fuzz test and workload generator reproducible from
//! a single `u64` seed with no external dependencies.

/// SplitMix64: expands a single `u64` seed into a stream of well-mixed
/// words. Used to initialize the xoshiro state (and nothing else).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256\*\* generator. `Clone` is intentional: cloning forks a
/// generator that will replay the identical stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed a generator. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// An independently seeded child generator (for per-case streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// A uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below(0)");
        // Lemire multiply-shift; bias is < 2^-64 per draw, irrelevant
        // for test generation and fully deterministic.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "Rng::gen_range on empty range");
        range.start + self.below(range.end - range.start)
    }

    /// A uniform `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / denom`.
    pub fn chance(&mut self, num: usize, denom: usize) -> bool {
        self.below(denom) < num
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform element of a non-empty slice. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A string of `len` characters drawn from `alphabet` (a non-empty
    /// `&str` of candidate chars).
    pub fn string_of(&mut self, alphabet: &str, len: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        (0..len).map(|_| *self.choose(&chars)).collect()
    }

    /// A string of length in `[min, max]` drawn from `alphabet`.
    pub fn string_in(&mut self, alphabet: &str, min: usize, max: usize) -> String {
        let len = self.gen_range(min..max + 1);
        self.string_of(alphabet, len)
    }

    /// An arbitrary (often hostile) string up to `max_len` chars:
    /// mixes ASCII, quotes, backslashes, braces, newlines, NULs, and
    /// multi-byte code points — a stand-in for proptest's `.*`.
    pub fn any_string(&mut self, max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| match self.below(10) {
                // Printable ASCII dominates so parsers see code-ish text.
                0..=5 => (0x20u8 + self.below(0x5f) as u8) as char,
                6 => *self.choose(&['"', '\\', '{', '}', '(', ')', ';']),
                7 => *self.choose(&['\n', '\t', '\r', '\0']),
                8 => *self.choose(&['é', 'λ', '∀', '🦀', 'ß', '中']),
                _ => char::from_u32(self.below(0xD7FF) as u32).unwrap_or('x'),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(9);
        let mut v: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn string_generators_respect_bounds() {
        let mut rng = Rng::new(11);
        for _ in 0..50 {
            let s = rng.string_in("abc", 2, 4);
            assert!((2..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| "abc".contains(c)));
            let t = rng.any_string(12);
            assert!(t.chars().count() <= 12);
        }
    }
}
