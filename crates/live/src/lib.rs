//! # alive-live
//!
//! The live programming environment of *its-alive* — the Section 3
//! features of the PLDI 2013 paper, built on the formal model in
//! `alive-core`:
//!
//! * **Live editing** ([`session::LiveSession`]): the program keeps
//!   running while the source is edited; accepted edits become UPDATE
//!   transitions, rejected edits leave the old program running.
//! * **UI↔code navigation** ([`navigation`]): tap a box to find its
//!   `boxed` statement; put the cursor in a `boxed` statement to find
//!   all boxes it created (one-to-many under loops), as in Figure 2.
//! * **Direct manipulation & value repairs** ([`repair`]): change a box
//!   attribute — or a rendered *value* — from the live view; the change
//!   is inverted through provenance into ranked candidate code edits.
//! * **Render memoization** ([`memo`]): the §5 optimization that reuses
//!   box subtrees whose inputs have not changed.
//! * **Frame pipeline** ([`pipeline`]): the same reuse extended through
//!   layout and paint — pointer-keyed incremental layout, damage-driven
//!   partial repaint, and a generation-keyed view memo, with
//!   [`pipeline::FrameStats`] observability.
//! * **Fault containment** ([`fault_log`], [`session`]): runtime faults
//!   degrade the session (last good view + fault banner) instead of
//!   killing it; faulting edits are quarantined and auto-reverted.
//!
//! # Example
//!
//! ```
//! use alive_live::LiveSession;
//!
//! let mut session = LiveSession::new(r#"
//!     global n : number = 0
//!     page start() {
//!         init { n := 41; }
//!         render { boxed { post "n = " ++ n; } }
//!     }
//! "#).expect("program compiles");
//! assert_eq!(session.live_view(), "n = 41\n");
//!
//! // A live edit: the display refreshes, the model (n = 41) survives.
//! let edited = session.source().replace("n = ", "value: ");
//! let outcome = session.edit_source(&edited);
//! assert!(outcome.is_applied());
//! assert_eq!(session.live_view(), "value: 41\n");
//! ```

#![warn(missing_docs)]
// Fault containment discipline: non-test code must never abort the
// process — failures are typed and contained. Tests may assert freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod editor;
pub mod examples;
pub mod fault_log;
pub mod memo;
pub mod metrics;
pub mod navigation;
pub mod pipeline;
pub mod protocol;
pub mod repair;
pub mod session;
pub mod trace;

pub use editor::{highlight_line, split_view, Selection, SplitViewOptions};
pub use examples::{ExampleProbe, ExampleStats, ProbeStatus};
pub use fault_log::{FaultLog, FAULT_LOG_CAPACITY};
pub use memo::{MemoCache, MemoStats, RenderDeps};
pub use metrics::SessionMetrics;
pub use navigation::{box_source_at, boxes_for_cursor, boxes_for_source, span_for_box};
pub use pipeline::{FramePipeline, FrameStats};
pub use protocol::{
    format_frame_stats, format_metrics_snapshot, parse_commands, FrameSnapshot, ProtocolParseError,
    SessionCommand, SessionEffect, TxPhase,
};
pub use repair::{
    attribute_edit, remove_attribute_edit, repairs_for, AttrEditError, CandidateRepair,
    ManipulateError, RepairError,
};
// Re-exported so frontends can attach observability without a direct
// alive-obs dependency.
pub use alive_obs::{ManualClock, MetricsSnapshot, Registry};
pub use session::{
    EditOutcome, FleetUpdateOutcome, LiveSession, SessionError, TxError, UndoOutcome,
};
pub use trace::{RecordingSession, SessionTrace, TraceEvent};

// A live session must be able to live behind a host's per-session
// mailbox and be picked up by whichever worker thread drains it next.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<LiveSession>();
    assert_send::<RecordingSession>();
};
