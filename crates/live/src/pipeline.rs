//! The frame pipeline: layout and paint with cross-frame reuse.
//!
//! The paper's §5 optimization — "reuse box tree elements that have not
//! changed" — is implemented for *evaluation* by [`crate::memo`]. This
//! module extends the same reuse through the rest of the frame:
//!
//! * **Layout** runs through [`alive_ui::layout_incremental`], whose
//!   pointer-keyed [`LayoutCache`] skips the measure pass for subtrees
//!   that are `Arc`-identical to last frame's (exactly the subtrees the
//!   memo cache spliced).
//! * **Paint** runs through a retained [`TextFrame`]: the old and new
//!   displays are diffed, the damage rectangles computed, and only the
//!   damaged cells repainted.
//! * **The whole view** is memoized against
//!   [`alive_core::system::System::display_generation`], so repeated
//!   reads of an unchanged display are a string clone.
//!
//! The invariant that makes all this safe to enable unconditionally is
//! *byte identity*: for every frame, the pipeline's output equals
//! `render_to_text(&layout(root))` computed from scratch. The pipeline
//! only ever updates its retained state (previous root, previous layout
//! tree, retained canvas) together, so the three are always mutually
//! consistent; the cross-check oracle tests in `tests/frame_pipeline.rs`
//! drive random sessions asserting the identity at every step.

use alive_core::boxtree::BoxNode;
use alive_obs::{Clock, MonotonicClock};
use alive_ui::{
    damage_rects, diff_displays, layout_incremental, LayoutCache, LayoutTree, TextFrame,
};
use std::sync::Arc;

/// Observability counters for the frame pipeline, covering every reuse
/// layer: evaluation (memo), layout (measure cache), paint (damage) and
/// the whole-view string memo. Per-frame fields describe the *last*
/// frame actually rendered; `frames` and `view_hits` accumulate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Frames rendered by the pipeline (view-memo misses).
    pub frames: u64,
    /// View reads answered from the generation-keyed string memo.
    pub view_hits: u64,
    /// `boxed` evaluations answered from the render memo cache
    /// (lifetime total; zero when the session runs without a memo).
    pub eval_hits: u64,
    /// `boxed` evaluations that ran and populated the memo cache.
    pub eval_misses: u64,
    /// Layout nodes measured from scratch last frame.
    pub nodes_measured: u64,
    /// Layout nodes skipped via the pointer-keyed cache last frame.
    pub nodes_reused: u64,
    /// Screen cells repainted last frame.
    pub cells_repainted: u64,
    /// Total screen cells (width × height) last frame.
    pub cells_total: u64,
    /// Whether the last frame was a partial (damage-driven) repaint.
    pub partial: bool,
    /// Microseconds spent settling the system (evaluation) before the
    /// last frame. Zero here; [`crate::LiveSession`] stamps it, like
    /// the `eval_*` counters.
    pub eval_us: u64,
    /// The slice of [`FrameStats::eval_us`] spent compiling bytecode
    /// (zero once the VM cache is warm). Stamped by
    /// [`crate::LiveSession`].
    pub eval_compile_us: u64,
    /// The slice of [`FrameStats::eval_us`] spent actually executing —
    /// `eval_us` minus the compile slice. Stamped by
    /// [`crate::LiveSession`].
    pub eval_exec_us: u64,
    /// Lifetime VM bytecode-cache hits (dispatches that reused the
    /// already-compiled program). Stamped by [`crate::LiveSession`].
    pub vm_cache_hits: u64,
    /// Microseconds spent in layout last frame.
    pub layout_us: u64,
    /// Microseconds spent in paint last frame.
    pub paint_us: u64,
}

impl FrameStats {
    /// Fraction of `boxed` evaluations served by the memo cache, 0–1.
    pub fn eval_reuse(&self) -> f64 {
        ratio(self.eval_hits, self.eval_hits + self.eval_misses)
    }

    /// Fraction of layout nodes skipped by the measure cache, 0–1.
    pub fn layout_reuse(&self) -> f64 {
        ratio(self.nodes_reused, self.nodes_reused + self.nodes_measured)
    }

    /// Fraction of screen cells repainted last frame, 0–1.
    pub fn repaint_fraction(&self) -> f64 {
        ratio(self.cells_repainted, self.cells_total)
    }
}

fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// The retained state that carries reuse across frames: the layout
/// cache, the previously painted root and its layout tree (for damage
/// diffing), the retained text canvas, and the generation-keyed view
/// string.
///
/// The previous root, previous tree, and retained canvas are updated
/// atomically by [`FramePipeline::render`], so the canvas content is
/// always the full paint of the previous tree and the previous tree is
/// always the layout of the previous root — the consistency the partial
/// repaint path relies on.
#[derive(Debug)]
pub struct FramePipeline {
    cache: LayoutCache,
    frame: TextFrame,
    prev: Option<(BoxNode, LayoutTree)>,
    view: Option<(u64, String)>,
    stats: FrameStats,
    /// Stage timings are taken against this clock — the real monotonic
    /// clock by default, an injected [`alive_obs::ManualClock`] in
    /// deterministic metrics tests.
    clock: Arc<dyn Clock>,
}

impl Default for FramePipeline {
    fn default() -> Self {
        FramePipeline {
            cache: LayoutCache::default(),
            frame: TextFrame::default(),
            prev: None,
            view: None,
            stats: FrameStats::default(),
            clock: Arc::new(MonotonicClock::new()),
        }
    }
}

impl FramePipeline {
    /// An empty pipeline; the first frame is always rendered in full.
    pub fn new() -> Self {
        FramePipeline::default()
    }

    /// Replace the clock the stage timings are taken against.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// The observability counters (last frame + lifetime totals). The
    /// `eval_*` fields are zero here; [`crate::LiveSession`] stamps them
    /// from its memo cache.
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// Drop all retained state: the next frame is a full layout and a
    /// full repaint. Reuse this when the terminal was disturbed by
    /// output the pipeline did not produce.
    pub fn invalidate(&mut self) {
        self.cache.clear();
        self.frame = TextFrame::new();
        self.prev = None;
        self.view = None;
    }

    /// Render `root` as text, reusing whatever the previous frames make
    /// reusable. `generation` keys the whole-view memo: pass
    /// [`alive_core::system::System::display_generation`], which changes
    /// whenever the display is reassigned.
    ///
    /// Output is byte-identical to
    /// `alive_ui::render_to_text(&alive_ui::layout(root))`.
    pub fn render(&mut self, generation: u64, root: &BoxNode) -> String {
        if let Some((g, text)) = &self.view {
            if *g == generation {
                self.stats.view_hits += 1;
                return text.clone();
            }
        }
        let layout_start = self.clock.now_us();
        let (tree, layout_stats) = layout_incremental(&mut self.cache, root);
        let layout_us = self.clock.now_us().saturating_sub(layout_start);

        let paint_start = self.clock.now_us();
        let mut partial = false;
        let text = match &self.prev {
            Some((prev_root, prev_tree)) => {
                let changes = diff_displays(prev_root, root);
                let damage = damage_rects(prev_tree, &tree, &changes);
                match self.frame.render_damaged(&tree, &damage) {
                    Some(text) => {
                        partial = true;
                        text
                    }
                    // Size changed (or no retained canvas): full paint.
                    None => self.frame.render_full(&tree),
                }
            }
            None => self.frame.render_full(&tree),
        };
        let paint_us = self.clock.now_us().saturating_sub(paint_start);

        let size = tree.size();
        self.stats.frames += 1;
        self.stats.nodes_measured = layout_stats.nodes_measured;
        self.stats.nodes_reused = layout_stats.nodes_reused;
        self.stats.cells_repainted = self.frame.cells_repainted();
        self.stats.cells_total = u64::from(size.w.max(0) as u32) * u64::from(size.h.max(0) as u32);
        self.stats.partial = partial;
        self.stats.layout_us = layout_us;
        self.stats.paint_us = paint_us;

        // Shallow clone: children are `Arc`-shared, so retaining the root
        // costs one item-vector copy, not a deep tree copy.
        self.prev = Some((root.clone(), tree));
        self.view = Some((generation, text.clone()));
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::boxtree::{BoxItem, BoxNode};
    use alive_core::Value;
    use alive_ui::{layout, render_to_text};
    use std::sync::Arc;

    fn leaf(text: &str) -> BoxNode {
        let mut b = BoxNode::new(None);
        b.items.push(BoxItem::leaf(Value::str(text)));
        b
    }

    fn root_of(children: Vec<Arc<BoxNode>>) -> BoxNode {
        let mut root = BoxNode::new(None);
        for c in children {
            root.items.push(BoxItem::Child(c));
        }
        root
    }

    #[test]
    fn pipeline_matches_from_scratch_rendering() {
        let shared: Vec<Arc<BoxNode>> = (0..4)
            .map(|i| Arc::new(leaf(&format!("row {i}"))))
            .collect();
        let mut pipeline = FramePipeline::new();

        let frame_a = root_of(shared.clone());
        let out = pipeline.render(1, &frame_a);
        assert_eq!(out, render_to_text(&layout(&frame_a)));
        assert!(!pipeline.stats().partial, "first frame is full");

        // Second frame: one row changes (same width, so the canvas size
        // is stable and the frame can be patched), the rest share.
        let mut children = shared.clone();
        children[2] = Arc::new(leaf("row X"));
        let frame_b = root_of(children);
        let out = pipeline.render(2, &frame_b);
        assert_eq!(out, render_to_text(&layout(&frame_b)));
        let stats = pipeline.stats();
        assert!(stats.partial, "steady-state frame repaints partially");
        assert!(
            stats.nodes_reused >= 3,
            "shared rows skip the measure pass: {stats:?}"
        );
        assert!(
            stats.cells_repainted < stats.cells_total,
            "only the changed row repaints: {stats:?}"
        );
    }

    #[test]
    fn unchanged_generation_is_a_string_memo_hit() {
        let frame = root_of(vec![Arc::new(leaf("hello"))]);
        let mut pipeline = FramePipeline::new();
        let first = pipeline.render(7, &frame);
        let again = pipeline.render(7, &frame);
        assert_eq!(first, again);
        let stats = pipeline.stats();
        assert_eq!(stats.frames, 1, "second read never touched the pipeline");
        assert_eq!(stats.view_hits, 1);
    }

    #[test]
    fn size_change_falls_back_to_a_full_frame() {
        let mut pipeline = FramePipeline::new();
        let small = root_of(vec![Arc::new(leaf("a"))]);
        pipeline.render(1, &small);
        let grown = root_of(vec![Arc::new(leaf("a")), Arc::new(leaf("longer line"))]);
        let out = pipeline.render(2, &grown);
        assert_eq!(out, render_to_text(&layout(&grown)));
        assert!(!pipeline.stats().partial, "resize cannot patch in place");
    }

    #[test]
    fn invalidate_forgets_retained_frames() {
        let frame = root_of(vec![Arc::new(leaf("x"))]);
        let mut pipeline = FramePipeline::new();
        pipeline.render(1, &frame);
        pipeline.invalidate();
        let out = pipeline.render(1, &frame);
        assert_eq!(out, render_to_text(&layout(&frame)));
        assert!(!pipeline.stats().partial, "post-invalidate frame is full");
    }
}
