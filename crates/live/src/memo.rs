//! The §5 box-tree reuse optimization.
//!
//! > "We are currently working on a simple optimization where we can
//! > reuse box tree elements that have not changed." — paper §5
//!
//! [`MemoCache`] implements that optimization as a [`RenderHook`]: each
//! `boxed` statement's subtree is cached under a key derived from the
//! statement identity, the visible local environment, the values of all
//! globals the statement's body can read, and the code version. On the
//! next render, subtrees whose inputs are unchanged are spliced in
//! without re-evaluating the body.
//!
//! Soundness relies on the paper's own discipline: render code cannot
//! write globals, so a `boxed` body is a *function* of its inputs. The
//! one extension that could break this — assignment to a local declared
//! *outside* the `boxed` body — is detected statically and such
//! statements are never cached.

use alive_core::bigstep::RenderHook;
use alive_core::boxtree::BoxNode;
use alive_core::expr::{BoxSourceId, Expr, ExprKind};
use alive_core::store::Store;
use alive_core::types::Name;
use alive_core::value::Value;
use alive_core::Program;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// What a `boxed` statement's body may depend on, besides its locals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    /// Globals the body may read (transitively through function calls).
    pub globals: BTreeSet<Name>,
    /// The body performs a call whose target is not statically known
    /// (e.g. through a function-typed local) — assume it reads anything.
    pub reads_everything: bool,
    /// The body assigns a local bound outside the `boxed` statement;
    /// re-playing a cached subtree would skip that effect, so the
    /// statement must never be cached.
    pub cacheable: bool,
}

/// Per-statement dependency analysis for a program.
#[derive(Debug, Clone, Default)]
pub struct RenderDeps {
    by_box: HashMap<BoxSourceId, ReadSet>,
}

impl RenderDeps {
    /// Analyze a program: compute the read set of every `boxed`
    /// statement in every render body (and render helper function).
    pub fn analyze(program: &Program) -> Self {
        // Fixpoint over functions:
        // name -> (globals read, dynamic call?, touches view state?).
        let mut fun_reads: HashMap<Name, (BTreeSet<Name>, bool, bool)> = HashMap::new();
        loop {
            let mut changed = false;
            for f in program.funs() {
                let mut globals = BTreeSet::new();
                let mut dynamic = false;
                let mut widgets = false;
                collect_reads(
                    &f.body,
                    &fun_reads,
                    &mut globals,
                    &mut dynamic,
                    &mut widgets,
                );
                let entry = fun_reads.entry(f.name.clone()).or_default();
                if entry.0 != globals || entry.1 != dynamic || entry.2 != widgets {
                    *entry = (globals, dynamic, widgets);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut by_box = HashMap::new();
        let mut roots: Vec<&Expr> = Vec::new();
        for f in program.funs() {
            roots.push(&f.body);
        }
        for p in program.pages() {
            roots.push(&p.render);
            roots.push(&p.init);
        }
        for root in roots {
            collect_boxed(root, &fun_reads, &mut by_box);
        }
        RenderDeps { by_box }
    }

    /// The read set of a `boxed` statement, if it exists in the program.
    pub fn read_set(&self, id: BoxSourceId) -> Option<&ReadSet> {
        self.by_box.get(&id)
    }
}

/// Collect globals read and dynamic-call flags in an expression,
/// following statically-known function references.
///
/// Bodies of *state-effect* lambdas (event handlers) are skipped: a
/// handler reads globals when the user taps, against the then-current
/// store — not during rendering — and render code cannot call it
/// (T-APP). Its global reads therefore do not invalidate the cache.
fn collect_reads(
    expr: &Expr,
    fun_reads: &HashMap<Name, (BTreeSet<Name>, bool, bool)>,
    globals: &mut BTreeSet<Name>,
    dynamic: &mut bool,
    widgets: &mut bool,
) {
    match &expr.kind {
        ExprKind::Global(g) => {
            globals.insert(g.clone());
        }
        ExprKind::FunRef(f) => {
            if let Some((g, d, w)) = fun_reads.get(f) {
                globals.extend(g.iter().cloned());
                *dynamic |= *d;
                *widgets |= *w;
            }
        }
        ExprKind::Remember { .. } | ExprKind::WidgetRead(_) | ExprKind::WidgetWrite(..) => {
            // View state makes the surrounding box uncacheable — both
            // directly and through any function that reaches here.
            *widgets = true;
        }
        ExprKind::Lambda(lam) => {
            if lam.effect != alive_core::Effect::State {
                collect_reads(&lam.body, fun_reads, globals, dynamic, widgets);
            }
            return;
        }
        ExprKind::Call(callee, _)
            if !matches!(
                callee.kind,
                ExprKind::FunRef(_) | ExprKind::PrimRef(_) | ExprKind::Lambda(_)
            ) =>
        {
            // Target unknown at this site (e.g. function-typed local).
            *dynamic = true;
        }
        _ => {}
    }
    for child in direct_children(expr) {
        collect_reads(child, fun_reads, globals, dynamic, widgets);
    }
}

/// The direct sub-expressions of an expression (not descending into
/// lambda bodies — callers decide that).
fn direct_children(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    match &expr.kind {
        ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::ColorLit(_)
        | ExprKind::Local(_)
        | ExprKind::Global(_)
        | ExprKind::FunRef(_)
        | ExprKind::PrimRef(_)
        | ExprKind::PopPage
        | ExprKind::Lambda(_) => {}
        ExprKind::Tuple(es) | ExprKind::ListLit(es) => out.extend(es.iter()),
        ExprKind::Proj(e, _)
        | ExprKind::Unary(_, e)
        | ExprKind::LocalAssign(_, e)
        | ExprKind::GlobalAssign(_, e)
        | ExprKind::WidgetWrite(_, e)
        | ExprKind::Boxed(_, e)
        | ExprKind::Post(e)
        | ExprKind::SetAttr(_, e) => out.push(e),
        ExprKind::WidgetRead(_) => {}
        ExprKind::Remember { init, body, .. } => {
            out.push(init);
            out.push(body);
        }
        ExprKind::Call(f, args) => {
            out.push(f);
            out.extend(args.iter());
        }
        ExprKind::PushPage(_, args) => out.extend(args.iter()),
        ExprKind::Let { value, body, .. } => {
            out.push(value);
            out.push(body);
        }
        ExprKind::Seq(a, b) | ExprKind::While(a, b) | ExprKind::Binary(_, a, b) => {
            out.push(a);
            out.push(b);
        }
        ExprKind::If(c, t, e) => {
            out.push(c);
            out.push(t);
            out.push(e);
        }
        ExprKind::ForRange { lo, hi, body, .. } => {
            out.push(lo);
            out.push(hi);
            out.push(body);
        }
        ExprKind::Foreach { list, body, .. } => {
            out.push(list);
            out.push(body);
        }
    }
    out
}

/// Find all `boxed` statements and compute their read sets, tracking
/// which locals are bound inside each body (for the cacheability check).
fn collect_boxed(
    root: &Expr,
    fun_reads: &HashMap<Name, (BTreeSet<Name>, bool, bool)>,
    out: &mut HashMap<BoxSourceId, ReadSet>,
) {
    root.walk(&mut |e| {
        if let ExprKind::Boxed(id, body) = &e.kind {
            let mut globals = BTreeSet::new();
            let mut dynamic = false;
            let mut widgets = false;
            collect_reads(body, fun_reads, &mut globals, &mut dynamic, &mut widgets);
            let cacheable = !assigns_outer_local(body) && !dynamic && !widgets;
            out.insert(
                *id,
                ReadSet {
                    globals,
                    reads_everything: dynamic,
                    cacheable,
                },
            );
        }
    });
}

/// Does the expression assign a local that it does not itself bind?
fn assigns_outer_local(body: &Expr) -> bool {
    fn go(expr: &Expr, bound: &mut HashSet<Name>) -> bool {
        match &expr.kind {
            ExprKind::LocalAssign(name, value) => !bound.contains(name) || go(value, bound),
            ExprKind::Let {
                name, value, body, ..
            } => {
                if go(value, bound) {
                    return true;
                }
                let fresh = bound.insert(name.clone());
                let hit = go(body, bound);
                if fresh {
                    bound.remove(name);
                }
                hit
            }
            ExprKind::Lambda(lam) => {
                let mut inner = bound.clone();
                inner.extend(lam.params.iter().map(|p| p.name.clone()));
                go(&lam.body, &mut inner)
            }
            ExprKind::ForRange { var, lo, hi, body } => {
                if go(lo, bound) || go(hi, bound) {
                    return true;
                }
                let fresh = bound.insert(var.clone());
                let hit = go(body, bound);
                if fresh {
                    bound.remove(var);
                }
                hit
            }
            ExprKind::Foreach { var, list, body } => {
                if go(list, bound) {
                    return true;
                }
                let fresh = bound.insert(var.clone());
                let hit = go(body, bound);
                if fresh {
                    bound.remove(var);
                }
                hit
            }
            _ => {
                // Generic traversal over children.
                let mut hit = false;
                let mut children = Vec::new();
                collect_children(expr, &mut children);
                for child in children {
                    if go(child, bound) {
                        hit = true;
                        break;
                    }
                }
                hit
            }
        }
    }

    fn collect_children<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
        match &expr.kind {
            ExprKind::Num(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::ColorLit(_)
            | ExprKind::Local(_)
            | ExprKind::Global(_)
            | ExprKind::FunRef(_)
            | ExprKind::PrimRef(_)
            | ExprKind::PopPage => {}
            ExprKind::Tuple(es) | ExprKind::ListLit(es) => out.extend(es.iter()),
            ExprKind::Proj(e, _)
            | ExprKind::Unary(_, e)
            | ExprKind::GlobalAssign(_, e)
            | ExprKind::WidgetWrite(_, e)
            | ExprKind::Boxed(_, e)
            | ExprKind::Post(e)
            | ExprKind::SetAttr(_, e) => out.push(e),
            ExprKind::WidgetRead(_) => {}
            ExprKind::Remember { init, body, .. } => {
                out.push(init);
                out.push(body);
            }
            ExprKind::LocalAssign(_, e) => out.push(e),
            ExprKind::Call(f, args) => {
                out.push(f);
                out.extend(args.iter());
            }
            ExprKind::PushPage(_, args) => out.extend(args.iter()),
            ExprKind::Lambda(lam) => out.push(&lam.body),
            ExprKind::Let { value, body, .. } => {
                out.push(value);
                out.push(body);
            }
            ExprKind::Seq(a, b) | ExprKind::While(a, b) | ExprKind::Binary(_, a, b) => {
                out.push(a);
                out.push(b);
            }
            ExprKind::If(c, t, e) => {
                out.push(c);
                out.push(t);
                out.push(e);
            }
            ExprKind::ForRange { lo, hi, body, .. } => {
                out.push(lo);
                out.push(hi);
                out.push(body);
            }
            ExprKind::Foreach { list, body, .. } => {
                out.push(list);
                out.push(body);
            }
        }
    }

    go(body, &mut HashSet::new())
}

/// Structural hash of a value (closures hash by code identity and
/// captured environment).
pub fn hash_value(value: &Value, state: &mut impl Hasher) {
    match value {
        Value::Number(n) => {
            1u8.hash(state);
            n.to_bits().hash(state);
        }
        Value::Str(s) => {
            2u8.hash(state);
            s.hash(state);
        }
        Value::Bool(b) => {
            3u8.hash(state);
            b.hash(state);
        }
        Value::Color(c) => {
            4u8.hash(state);
            (c.r, c.g, c.b).hash(state);
        }
        Value::Tuple(vs) => {
            5u8.hash(state);
            vs.len().hash(state);
            for v in vs.iter() {
                hash_value(v, state);
            }
        }
        Value::List(vs) => {
            6u8.hash(state);
            vs.len().hash(state);
            for v in vs.iter() {
                hash_value(v, state);
            }
        }
        Value::Closure(c) => {
            7u8.hash(state);
            (std::sync::Arc::as_ptr(&c.body) as usize).hash(state);
            c.version.hash(state);
            c.env.len().hash(state);
            for (n, v) in c.env.iter() {
                n.hash(state);
                hash_value(v, state);
            }
        }
        Value::Prim(p) => {
            8u8.hash(state);
            p.hash(state);
        }
        Value::WidgetRef(k) => {
            9u8.hash(state);
            (k.id.0, k.occurrence).hash(state);
        }
    }
}

/// Cache statistics, for the E4 experiment and for tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// `boxed` evaluations answered from the cache.
    pub hits: u64,
    /// `boxed` evaluations that ran and populated the cache.
    pub misses: u64,
    /// `boxed` statements that are statically uncacheable.
    pub uncacheable: u64,
}

/// The render cache: a [`RenderHook`] implementing the §5 reuse
/// optimization with a two-generation eviction policy (anything not
/// reused for one whole render is dropped).
#[derive(Debug, Default)]
pub struct MemoCache {
    deps: RenderDeps,
    // Entries hold `Arc<BoxNode>` so a hit splices the cached subtree by
    // pointer copy — O(1) instead of a deep clone — and the spliced
    // subtree stays pointer-identical across frames, which the layout
    // cache and damage diff downstream rely on to skip work.
    current: HashMap<u64, (Arc<BoxNode>, Value)>,
    previous: HashMap<u64, (Arc<BoxNode>, Value)>,
    store_snapshot: Store,
    version: u64,
    stats: MemoStats,
}

impl MemoCache {
    /// Build a cache for a program (runs the dependency analysis).
    pub fn new(program: &Program) -> Self {
        MemoCache {
            deps: RenderDeps::analyze(program),
            ..Default::default()
        }
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Number of cached subtrees.
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.previous.is_empty()
    }

    /// Reset after a code update: new code means new statement
    /// identities and a new dependency analysis.
    pub fn on_update(&mut self, program: &Program, version: u64) {
        self.deps = RenderDeps::analyze(program);
        self.current.clear();
        self.previous.clear();
        self.version = version;
        self.stats = MemoStats::default();
    }

    /// Start a render pass: rotate generations and snapshot the store
    /// (keys hash global values as of this render).
    pub fn begin_render(&mut self, store: &Store, version: u64) {
        if version != self.version {
            self.current.clear();
            self.previous.clear();
            self.version = version;
        } else {
            self.previous = std::mem::take(&mut self.current);
        }
        self.store_snapshot = store.clone();
    }

    fn key(&self, id: BoxSourceId, locals: &[(Name, Value)]) -> Option<u64> {
        let read_set = self.deps.read_set(id)?;
        if !read_set.cacheable {
            return None;
        }
        let mut hasher = DefaultHasher::new();
        id.0.hash(&mut hasher);
        self.version.hash(&mut hasher);
        locals.len().hash(&mut hasher);
        for (n, v) in locals {
            n.hash(&mut hasher);
            hash_value(v, &mut hasher);
        }
        for g in &read_set.globals {
            g.hash(&mut hasher);
            match self.store_snapshot.get(g) {
                Some(v) => hash_value(v, &mut hasher),
                None => 0u8.hash(&mut hasher),
            }
        }
        Some(hasher.finish())
    }
}

impl RenderHook for MemoCache {
    fn enter_boxed(
        &mut self,
        id: BoxSourceId,
        locals: &[(Name, Value)],
    ) -> Option<(Arc<BoxNode>, Value)> {
        let Some(key) = self.key(id, locals) else {
            self.stats.uncacheable += 1;
            return None;
        };
        if let Some((node, value)) = self.current.get(&key) {
            self.stats.hits += 1;
            return Some((Arc::clone(node), value.clone()));
        }
        if let Some(entry) = self.previous.remove(&key) {
            self.stats.hits += 1;
            let out = (Arc::clone(&entry.0), entry.1.clone());
            self.current.insert(key, entry);
            return Some(out);
        }
        None
    }

    fn after_boxed(
        &mut self,
        id: BoxSourceId,
        locals: &[(Name, Value)],
        node: &Arc<BoxNode>,
        value: &Value,
    ) {
        if let Some(key) = self.key(id, locals) {
            self.stats.misses += 1;
            self.current.insert(key, (Arc::clone(node), value.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::compile;

    #[test]
    fn read_sets_follow_function_calls() {
        let p = compile(
            "global a : number = 1
             global b : number = 2
             fun helper(): number pure { b }
             page start() {
                 render {
                     boxed { post a + helper(); }
                 }
             }",
        )
        .expect("compiles");
        let deps = RenderDeps::analyze(&p);
        let id = BoxSourceId(0);
        let rs = deps.read_set(id).expect("analyzed");
        let names: Vec<&str> = rs.globals.iter().map(|n| &**n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(rs.cacheable);
        assert!(!rs.reads_everything);
    }

    #[test]
    fn recursive_functions_reach_fixpoint() {
        let p = compile(
            "global g : number = 1
             fun even(n: number): bool pure {
                 if n == 0 { true } else { odd(n - 1) }
             }
             fun odd(n: number): bool pure {
                 if n == 0 { g > 0 } else { even(n - 1) }
             }
             page start() {
                 render { boxed { post even(4); } }
             }",
        )
        .expect("compiles");
        let deps = RenderDeps::analyze(&p);
        let rs = deps.read_set(BoxSourceId(0)).expect("analyzed");
        assert!(rs.globals.iter().any(|n| &**n == "g"));
    }

    #[test]
    fn dynamic_calls_poison_cacheability() {
        let p = compile(
            "page start() {
                 render {
                     boxed {
                         let f = fn(x: number) -> x;
                         let g = f;
                         post g(1);
                     }
                 }
             }",
        )
        .expect("compiles");
        let deps = RenderDeps::analyze(&p);
        let rs = deps.read_set(BoxSourceId(0)).expect("analyzed");
        assert!(rs.reads_everything);
        assert!(!rs.cacheable);
    }

    #[test]
    fn view_state_reached_through_function_calls_is_uncacheable() {
        // A `remember` hidden behind a render helper must still poison
        // the calling box's cacheability, or a cached copy would freeze
        // the slot and corrupt occurrence counters.
        let p = compile(
            "fun widgety() : () render {
                 boxed {
                     remember n : number = 0;
                     post n;
                 }
             }
             page start() {
                 render {
                     boxed { widgety(); }
                 }
             }",
        )
        .expect("compiles");
        let deps = RenderDeps::analyze(&p);
        // Every boxed statement here is uncacheable: the inner one holds
        // the remember, the outer one reaches it through `widgety`.
        for id in [BoxSourceId(0), BoxSourceId(1)] {
            let rs = deps.read_set(id).expect("analyzed");
            assert!(!rs.cacheable, "{id:?} must not cache");
        }
    }

    #[test]
    fn outer_local_assignment_is_uncacheable() {
        let p = compile(
            "fun f(): number render {
                 let total = 0;
                 boxed { total := total + 1; post total; }
                 total
             }
             page start() { render { post f(); } }",
        )
        .expect("compiles");
        let deps = RenderDeps::analyze(&p);
        let rs = deps.read_set(BoxSourceId(0)).expect("analyzed");
        assert!(!rs.cacheable, "outer-local assignment must not be cached");
    }

    #[test]
    fn inner_local_assignment_is_fine() {
        let p = compile(
            "page start() {
                 render {
                     boxed {
                         let cents = \"5\";
                         cents := \"0\" ++ cents;
                         post cents;
                     }
                 }
             }",
        )
        .expect("compiles");
        let deps = RenderDeps::analyze(&p);
        let rs = deps.read_set(BoxSourceId(0)).expect("analyzed");
        assert!(rs.cacheable, "locals bound inside the body are fine");
    }

    #[test]
    fn hash_value_distinguishes_and_agrees() {
        let h = |v: &Value| {
            let mut hasher = DefaultHasher::new();
            hash_value(v, &mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&Value::Number(1.0)), h(&Value::Number(1.0)));
        assert_ne!(h(&Value::Number(1.0)), h(&Value::Number(2.0)));
        assert_ne!(h(&Value::Number(1.0)), h(&Value::str("1")));
        let t1 = Value::tuple(vec![Value::str("a"), Value::Number(1.0)]);
        let t2 = Value::tuple(vec![Value::str("a"), Value::Number(1.0)]);
        assert_eq!(h(&t1), h(&t2));
    }

    #[test]
    fn cache_reuses_across_renders() {
        use alive_core::bigstep;
        let p = compile(
            "global items : list number = [1, 2, 3]
             global sel : number = 0
             page start() {
                 render {
                     foreach x in items {
                         boxed { post x; }
                     }
                     boxed { post sel; }
                 }
             }",
        )
        .expect("compiles");
        let page = p.page("start").expect("page");
        let mut store = Store::new();
        store.set(
            "items",
            Value::list(vec![
                Value::Number(1.0),
                Value::Number(2.0),
                Value::Number(3.0),
            ]),
        );
        store.set("sel", Value::Number(0.0));

        let mut cache = MemoCache::new(&p);
        cache.begin_render(&store, 0);
        let first =
            bigstep::run_render_hooked(&p, &store, 0, 1_000_000, vec![], &page.render, &mut cache)
                .expect("renders");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 4);

        // Change only `sel`: the three item boxes reuse, the sel box re-renders.
        store.set("sel", Value::Number(9.0));
        cache.begin_render(&store, 0);
        let second =
            bigstep::run_render_hooked(&p, &store, 0, 1_000_000, vec![], &page.render, &mut cache)
                .expect("renders");
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cache.stats().misses, 5);
        assert_eq!(second.cost.boxes_created, 1);
        assert_eq!(second.cost.boxes_reused, 3);

        // The reused tree is identical to an uncached render.
        let plain =
            bigstep::run_render(&p, &store, 0, 1_000_000, vec![], &page.render).expect("renders");
        assert_eq!(second.root, plain.root);
        assert_ne!(first.root, second.root);
    }
}
