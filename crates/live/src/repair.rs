//! Bidirectional evaluation: direct manipulation and ranked value
//! repairs — Section 3's third live feature, extended.
//!
//! > "The programmer can directly change the attributes of a box in the
//! > live view, where the code view is updated automatically to reflect
//! > these changes. ... to insert a command to change the size of a
//! > margin, the programmer can first select the corresponding box in
//! > the live view and then choose the margin property from a button
//! > menu, which inserts (if not present) a command in the code."
//!
//! Two layers live here:
//!
//! * **Attribute edits** ([`attribute_edit`], [`remove_attribute_edit`])
//!   compute the [`TextEdit`] for the paper's margin example: re-parse
//!   the current source, find the `boxed` statement that created the
//!   selected box, and rewrite or insert a `box.attr := ...;` statement.
//!   The effects of manipulation are thereby "enshrined in code" (§6).
//! * **Value repairs** ([`repairs_for`]): the bidirectional step. Every
//!   rendered value carries [`Provenance`] — the literal or expression
//!   that produced it plus a snapshot of its free locals. Editing the
//!   *output* value inverts that provenance into ranked
//!   [`CandidateRepair`]s: rank 0 rewrites a literal in place, rank 1
//!   inverts one operand of the producing expression through
//!   `+ - * / ++` or unary negation (using the captured environment to
//!   solve for the literal), rank 2 falls back to overwriting the whole
//!   expression with the desired literal. Numeric inversions are
//!   verified by forward recomputation before being offered, so an
//!   offered repair re-renders to exactly the requested value.
//!
//! The [`LiveSession`] extensions ([`LiveSession::repairs_at`],
//! [`LiveSession::apply_repair`], [`LiveSession::attribute_edit_at`])
//! resolve selections against the session's *current* display and
//! source at call time — a protocol client addressing boxes by path can
//! never hand the engine stale spans — and guard repair application
//! with a source snapshot taken when the offer was computed.

use crate::session::{EditOutcome, LiveSession, SessionError};
use alive_core::expr::BoxSourceId;
use alive_core::value::fmt_number;
use alive_core::{Attr, Program, Provenance, Value};
use alive_syntax::ast::{BinOp, Block, Expr, ExprKind, Item, Stmt, StmtKind, UnOp};
use alive_syntax::{parse_expr, parse_program, Span, TextEdit};
use std::fmt;

/// Errors computing a direct-manipulation edit.
#[derive(Debug, Clone, PartialEq)]
pub enum ManipulateError {
    /// The selected box has no `boxed` statement (the implicit root).
    NoSourceStatement,
    /// The statement's span was not found in the source (stale source).
    StatementNotFound(Span),
    /// The replacement value does not parse as an expression.
    BadValue(String),
}

impl fmt::Display for ManipulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManipulateError::NoSourceStatement => {
                f.write_str("the selected box was not created by a boxed statement")
            }
            ManipulateError::StatementNotFound(span) => {
                write!(f, "no boxed statement at {span} in the current source")
            }
            ManipulateError::BadValue(v) => {
                write!(f, "`{v}` does not parse as an expression")
            }
        }
    }
}

impl std::error::Error for ManipulateError {}

/// Compute the text edit that sets `attr` of the box created by the
/// `boxed` statement `id` to the expression `value_src`.
///
/// If the statement body already sets the attribute, the existing
/// value expression is replaced in place (so repeated manipulation
/// twiddles one number, exactly like the paper's margin example);
/// otherwise a new `box.attr := value;` statement is inserted at the
/// start of the body.
///
/// # Errors
///
/// See [`ManipulateError`].
pub fn attribute_edit(
    source: &str,
    program: &Program,
    id: BoxSourceId,
    attr: Attr,
    value_src: &str,
) -> Result<TextEdit, ManipulateError> {
    if parse_expr(value_src).is_err() {
        return Err(ManipulateError::BadValue(value_src.to_string()));
    }
    let span = program
        .box_span(id)
        .ok_or(ManipulateError::NoSourceStatement)?;
    let parsed = parse_program(source);
    let body =
        find_boxed_body(&parsed.program, span).ok_or(ManipulateError::StatementNotFound(span))?;

    // Rewrite an existing `box.attr := ...;` if present (direct
    // children only — nested boxes own their own attributes).
    for stmt in &body.stmts {
        if let StmtKind::SetAttr { attr: name, value } = &stmt.kind {
            if Attr::from_name(&name.text) == Some(attr) {
                return Ok(TextEdit::replace(value.span, value_src));
            }
        }
        // `on tap { ... }` sugar also sets handler attributes.
        if let StmtKind::On { event, .. } = &stmt.kind {
            if attr.is_handler() && Attr::from_name(&event.text) == Some(attr) {
                return Ok(TextEdit::replace(
                    stmt.span,
                    format!("box.{attr} := {value_src};"),
                ));
            }
        }
    }
    // Insert a new statement right after the opening brace.
    Ok(TextEdit::insert(
        body.span.start + 1,
        format!(" box.{attr} := {value_src};"),
    ))
}

/// Compute the text edit that removes an attribute setting from the box
/// created by `boxed` statement `id` (the "reset to default" button of a
/// property inspector). Returns `None` if the statement does not set the
/// attribute directly.
///
/// # Errors
///
/// See [`ManipulateError`].
pub fn remove_attribute_edit(
    source: &str,
    program: &Program,
    id: BoxSourceId,
    attr: Attr,
) -> Result<Option<TextEdit>, ManipulateError> {
    let span = program
        .box_span(id)
        .ok_or(ManipulateError::NoSourceStatement)?;
    let parsed = parse_program(source);
    let body =
        find_boxed_body(&parsed.program, span).ok_or(ManipulateError::StatementNotFound(span))?;
    for stmt in &body.stmts {
        let matches_attr = match &stmt.kind {
            StmtKind::SetAttr { attr: name, .. } => Attr::from_name(&name.text) == Some(attr),
            StmtKind::On { event, .. } => {
                attr.is_handler() && Attr::from_name(&event.text) == Some(attr)
            }
            _ => false,
        };
        if matches_attr {
            // Delete the statement plus any whitespace run up to it, so
            // repeated add/remove cycles do not accumulate blank space.
            let mut start = stmt.span.start as usize;
            let bytes = source.as_bytes();
            while start > 0 && (bytes[start - 1] == b' ' || bytes[start - 1] == b'\n') {
                start -= 1;
            }
            return Ok(Some(TextEdit::delete(Span::new(
                start as u32,
                stmt.span.end,
            ))));
        }
    }
    Ok(None)
}

/// Find the body block of the `boxed` statement at exactly `span`.
fn find_boxed_body(program: &alive_syntax::Program, span: Span) -> Option<&Block> {
    fn in_block(block: &Block, span: Span) -> Option<&Block> {
        for stmt in &block.stmts {
            if let Some(found) = in_stmt(stmt, span) {
                return Some(found);
            }
        }
        None
    }

    fn in_stmt(stmt: &Stmt, span: Span) -> Option<&Block> {
        match &stmt.kind {
            StmtKind::Boxed { body } => {
                if stmt.span == span {
                    return Some(body);
                }
                in_block(body, span)
            }
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => in_block(then_block, span)
                .or_else(|| else_block.as_ref().and_then(|b| in_block(b, span))),
            StmtKind::While { body, .. }
            | StmtKind::ForRange { body, .. }
            | StmtKind::Foreach { body, .. }
            | StmtKind::On { body, .. } => in_block(body, span),
            _ => None,
        }
    }

    for item in &program.items {
        let found = match item {
            Item::Fun(f) => in_block(&f.body, span),
            Item::Page(p) => in_block(&p.init, span).or_else(|| in_block(&p.render, span)),
            // Globals and examples are bare expressions: no `boxed`
            // statement can occur inside them.
            Item::Global(_) | Item::Example(_) => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

// ---------------------------------------------------------------------
// Ranked value repairs — inverting provenance into candidate edits.
// ---------------------------------------------------------------------

/// One candidate source edit that would make a selected rendered value
/// equal the desired value, ranked by how faithful it is to the
/// program's existing structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateRepair {
    /// Rank, lower is better: `0` rewrites the originating literal in
    /// place, `1` inverts one operand of the producing expression, `2`
    /// overwrites the whole expression with the desired literal.
    pub rank: u32,
    /// The source edit implementing the repair.
    pub edit: TextEdit,
    /// Plain-language description of what the repair does, suitable for
    /// a candidate menu.
    pub description: String,
}

/// Parse the user's desired-value text: a number, `true`/`false`, a
/// `"quoted"` string, or — as the total fallback — the bare text as a
/// string.
pub fn parse_desired(text: &str) -> Value {
    let t = text.trim();
    if let Ok(n) = t.parse::<f64>() {
        if n.is_finite() {
            return Value::Number(n);
        }
    }
    match t {
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
        return Value::str(&t[1..t.len() - 1]);
    }
    Value::str(t)
}

/// The source text of a value as a literal expression, or `None` for
/// values with no literal form (closures, tuples, lists, colors).
fn literal_src(v: &Value) -> Option<String> {
    match v {
        Value::Number(n) if n.is_finite() => Some(fmt_number(*n)),
        Value::Str(s) => Some(quote_str(s)),
        Value::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

/// Quote a string as a source literal, escaping what the lexer escapes.
fn quote_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `" (with a = 1, b = 2)"` — the captured environment, for candidate
/// descriptions; empty when nothing was captured.
fn env_note(env: &[(alive_core::types::Name, Value)]) -> String {
    if env.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = env
        .iter()
        .map(|(name, value)| format!("{name} = {}", value.display_text()))
        .collect();
    format!(" (with {})", parts.join(", "))
}

/// Invert a value's provenance into ranked candidate repairs: source
/// edits that would make the value render as `desired` instead of
/// `old`. Best candidates first. Returns an empty list only when the
/// provenance span no longer addresses `source` or the desired value
/// has no literal form *and* no operand inversion applies.
pub fn repairs_for(
    source: &str,
    prov: &Provenance,
    old: &Value,
    desired: &Value,
) -> Vec<CandidateRepair> {
    let mut out = Vec::new();
    let span = prov.span();
    let Some(slice) = source.get(span.start as usize..span.end as usize) else {
        return out;
    };
    let desired_src = literal_src(desired);
    match prov {
        Provenance::Literal(_) => {
            if let Some(new_text) = &desired_src {
                out.push(CandidateRepair {
                    rank: 0,
                    edit: TextEdit::replace(span, new_text.clone()),
                    description: format!("change the literal `{slice}` to `{new_text}`"),
                });
            }
        }
        Provenance::Expr { env, .. } => {
            // The expression re-parses from its own slice; spans inside
            // the parsed tree are slice-relative (offset by span.start).
            if let Ok(expr) = parse_expr(slice) {
                invert_operand(span.start, slice, &expr, old, desired, env, &mut out);
            }
            if let Some(new_text) = &desired_src {
                out.push(CandidateRepair {
                    rank: 2,
                    edit: TextEdit::replace(span, new_text.clone()),
                    description: format!(
                        "replace the expression `{slice}` with the literal `{new_text}`{}",
                        env_note(env)
                    ),
                });
            }
        }
    }
    out.sort_by_key(|c| c.rank);
    out
}

/// A plain numeric literal operand, as `(value, slice-relative span)`.
fn lit_num(e: &Expr) -> Option<(f64, Span)> {
    if let ExprKind::Number(n) = e.kind {
        Some((n, e.span))
    } else {
        None
    }
}

/// A plain string literal operand, as `(text, slice-relative span)`.
fn lit_str(e: &Expr) -> Option<(&str, Span)> {
    if let ExprKind::Str(s) = &e.kind {
        Some((s, e.span))
    } else {
        None
    }
}

/// Rank-1 inversions: rewrite one literal inside the producing
/// expression so the whole expression recomputes to `desired`. The
/// search recurses: a literal operand at any level can be solved
/// directly, and when one operand is a literal the (old, desired) pair
/// is pushed through the operator into the *computed* operand and the
/// search continues there. `math.abs` / `math.min` / `math.max` calls
/// pass the pair through as well, pinning the surviving operand from
/// the old result or (for `abs`, whose operand sign the algebra cannot
/// recover) the captured environment. Every derivation and every solved
/// literal is verified by forward recomputation in both the `old` and
/// `desired` directions (floats do not always invert exactly); anything
/// that fails verification is dropped — the rank-2 literal fallback
/// remains.
fn invert_operand(
    base: u32,
    slice: &str,
    expr: &Expr,
    old: &Value,
    desired: &Value,
    env: &[(alive_core::types::Name, Value)],
    out: &mut Vec<CandidateRepair>,
) {
    invert_rec(base, slice, expr, old, desired, env, &env_note(env), out, 8);
}

/// Best-effort pure evaluation of a re-parsed provenance sub-expression
/// under the captured environment. Used where the algebra alone cannot
/// pin an operand's value — e.g. the sign of a `math.abs` argument — so
/// prim-call passthrough stays forward-verified instead of guessed.
fn eval_num_ast(e: &Expr, env: &[(alive_core::types::Name, Value)]) -> Option<f64> {
    match &e.kind {
        ExprKind::Number(n) => Some(*n),
        ExprKind::Name(n) => env
            .iter()
            .rev()
            .find(|(k, _)| k.as_ref() == n.as_str())
            .and_then(|(_, v)| match v {
                Value::Number(x) => Some(*x),
                _ => None,
            }),
        ExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } => Some(-eval_num_ast(expr, env)?),
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, b) = (eval_num_ast(lhs, env)?, eval_num_ast(rhs, env)?);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div => Some(a / b),
                _ => None,
            }
        }
        ExprKind::Call { callee, args } => {
            let ExprKind::Qualified { ns, name } = &callee.kind else {
                return None;
            };
            if ns.text != "math" {
                return None;
            }
            match (name.text.as_str(), args.as_slice()) {
                ("abs", [x]) => Some(eval_num_ast(x, env)?.abs()),
                ("min", [x, y]) => Some(eval_num_ast(x, env)?.min(eval_num_ast(y, env)?)),
                ("max", [x, y]) => Some(eval_num_ast(x, env)?.max(eval_num_ast(y, env)?)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Offer a solved numeric literal, if finite and verified.
#[allow(clippy::too_many_arguments)]
fn push_num(
    out: &mut Vec<CandidateRepair>,
    base: u32,
    slice: &str,
    note: &str,
    lit: f64,
    lit_span: Span,
    new_lit: f64,
    verified: bool,
) {
    if !new_lit.is_finite() || !verified {
        return;
    }
    let new_text = fmt_number(new_lit);
    let abs = Span::new(base + lit_span.start, base + lit_span.end);
    out.push(CandidateRepair {
        rank: 1,
        edit: TextEdit::replace(abs, new_text.clone()),
        description: format!(
            "change `{}` to `{new_text}` inside `{slice}`{note}",
            fmt_number(lit)
        ),
    });
}

/// Offer a rewritten string-literal operand of a concatenation.
fn push_str(
    out: &mut Vec<CandidateRepair>,
    base: u32,
    slice: &str,
    note: &str,
    lit: &str,
    lit_span: Span,
    new_lit: &str,
) {
    let new_text = quote_str(new_lit);
    let abs = Span::new(base + lit_span.start, base + lit_span.end);
    out.push(CandidateRepair {
        rank: 1,
        edit: TextEdit::replace(abs, new_text.clone()),
        description: format!(
            "change the string `{}` to `{new_text}` inside `{slice}`{note}",
            quote_str(lit)
        ),
    });
}

/// The numeric value a concatenation operand must have had to render as
/// `text` — only accepted when `fmt_number` round-trips exactly, so the
/// derived pair reproduces the rendering byte for byte.
fn rendered_num(text: &str) -> Option<f64> {
    let n: f64 = text.parse().ok()?;
    (fmt_number(n) == text).then_some(n)
}

/// One step of the recursive inversion (see [`invert_operand`]).
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn invert_rec(
    base: u32,
    slice: &str,
    expr: &Expr,
    old: &Value,
    desired: &Value,
    env: &[(alive_core::types::Name, Value)],
    note: &str,
    out: &mut Vec<CandidateRepair>,
    depth: usize,
) {
    if depth == 0 {
        return;
    }
    // Recurse into a computed numeric operand with a derived pair, but
    // only when reconstructing both `old` and `desired` from the
    // derived values is float-exact — then a verified deeper solve
    // composes back up to exactly `desired`.
    let recurse_num = |sub: &Expr, o2: f64, d2: f64, exact: bool, out: &mut Vec<_>| {
        if exact && o2.is_finite() && d2.is_finite() {
            invert_rec(
                base,
                slice,
                sub,
                &Value::Number(o2),
                &Value::Number(d2),
                env,
                note,
                out,
                depth - 1,
            );
        }
    };
    match &expr.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            if let (Value::Number(o), Value::Number(d)) = (old, desired) {
                let (o, d) = (*o, *d);
                match op {
                    BinOp::Add => {
                        if let Some((a, s)) = lit_num(lhs) {
                            let x = o - a;
                            let a2 = d - x;
                            push_num(out, base, slice, note, a, s, a2, a2 + x == d);
                            recurse_num(rhs, x, d - a, a + x == o && a + (d - a) == d, out);
                        }
                        if let Some((b, s)) = lit_num(rhs) {
                            let x = o - b;
                            let b2 = d - x;
                            push_num(out, base, slice, note, b, s, b2, x + b2 == d);
                            recurse_num(lhs, x, d - b, x + b == o && (d - b) + b == d, out);
                        }
                    }
                    BinOp::Sub => {
                        if let Some((a, s)) = lit_num(lhs) {
                            // o = a - x
                            let x = a - o;
                            let a2 = d + x;
                            push_num(out, base, slice, note, a, s, a2, a2 - x == d);
                            recurse_num(rhs, x, a - d, a - x == o && a - (a - d) == d, out);
                        }
                        if let Some((b, s)) = lit_num(rhs) {
                            // o = x - b
                            let x = o + b;
                            let b2 = x - d;
                            push_num(out, base, slice, note, b, s, b2, x - b2 == d);
                            recurse_num(lhs, x, d + b, x - b == o && (d + b) - b == d, out);
                        }
                    }
                    BinOp::Mul => {
                        if let Some((a, s)) = lit_num(lhs) {
                            // o = a * x; recover x, re-solve, verify both ways.
                            if a != 0.0 {
                                let x = o / a;
                                let a2 = d / x;
                                push_num(
                                    out,
                                    base,
                                    slice,
                                    note,
                                    a,
                                    s,
                                    a2,
                                    a * x == o && a2 * x == d,
                                );
                                recurse_num(rhs, x, d / a, a * x == o && a * (d / a) == d, out);
                            }
                        }
                        if let Some((b, s)) = lit_num(rhs) {
                            if b != 0.0 {
                                let x = o / b;
                                let b2 = d / x;
                                push_num(
                                    out,
                                    base,
                                    slice,
                                    note,
                                    b,
                                    s,
                                    b2,
                                    x * b == o && x * b2 == d,
                                );
                                recurse_num(lhs, x, d / b, x * b == o && (d / b) * b == d, out);
                            }
                        }
                    }
                    BinOp::Div => {
                        if let Some((a, s)) = lit_num(lhs) {
                            // o = a / x
                            if o != 0.0 {
                                let x = a / o;
                                let a2 = d * x;
                                push_num(
                                    out,
                                    base,
                                    slice,
                                    note,
                                    a,
                                    s,
                                    a2,
                                    a / x == o && a2 / x == d,
                                );
                                if d != 0.0 {
                                    recurse_num(rhs, x, a / d, a / x == o && a / (a / d) == d, out);
                                }
                            }
                        }
                        if let Some((b, s)) = lit_num(rhs) {
                            // o = x / b
                            if d != 0.0 {
                                let x = o * b;
                                let b2 = x / d;
                                push_num(
                                    out,
                                    base,
                                    slice,
                                    note,
                                    b,
                                    s,
                                    b2,
                                    x / b == o && x / b2 == d,
                                );
                                recurse_num(lhs, x, d * b, x / b == o && (d * b) / b == d, out);
                            }
                        }
                    }
                    _ => {}
                }
            }
            if *op == BinOp::Concat {
                if let (Value::Str(o), Value::Str(d)) = (old, desired) {
                    if let Some((s, span)) = lit_str(lhs) {
                        // o = s ++ rest: keep the computed tail, rewrite
                        // the literal head — or keep the head and push
                        // the remainder pair into the computed tail.
                        if let Some(rest) = o.strip_prefix(s) {
                            if let Some(head) = d.strip_suffix(rest) {
                                push_str(out, base, slice, note, s, span, head);
                            }
                            if let Some(tail) = d.strip_prefix(s) {
                                recurse_concat_operand(
                                    base, slice, rhs, rest, tail, env, note, out, depth,
                                );
                            }
                        }
                    }
                    if let Some((s, span)) = lit_str(rhs) {
                        if let Some(head) = o.strip_suffix(s) {
                            if let Some(tail) = d.strip_prefix(head) {
                                push_str(out, base, slice, note, s, span, tail);
                            }
                            if let Some(front) = d.strip_suffix(s) {
                                recurse_concat_operand(
                                    base, slice, lhs, head, front, env, note, out, depth,
                                );
                            }
                        }
                    }
                }
            }
        }
        // Prim-call passthrough: `math.abs` / `math.min` / `math.max`
        // invert when the old result pins the surviving operand, so the
        // offered literal is still checked by recomputing the call
        // forward (with the pinned operand) before it is offered.
        ExprKind::Call { callee, args } => {
            let prim = match &callee.kind {
                ExprKind::Qualified { ns, name } if ns.text == "math" => name.text.as_str(),
                _ => return,
            };
            let (Value::Number(o), Value::Number(d)) = (old, desired) else {
                return;
            };
            let (o, d) = (*o, *d);
            match (prim, args.as_slice()) {
                ("abs", [arg]) => {
                    // o = |x| requires d ≥ 0 to be reachable at all.
                    if d < 0.0 {
                        return;
                    }
                    if let Some((n, s)) = lit_num(arg) {
                        // Keep the literal's sign so the edit is minimal.
                        let n2 = if n < 0.0 { -d } else { d };
                        push_num(out, base, slice, note, n, s, n2, n2.abs() == d);
                    } else if let Some(x) = eval_num_ast(arg, env) {
                        // The algebra alone cannot recover the operand's
                        // sign from o = |x|; the captured env pins the
                        // actual value, keeping the pushed-through pair
                        // forward-verified rather than guessed.
                        if x.abs() == o {
                            let d2 = if x < 0.0 { -d } else { d };
                            recurse_num(arg, x, d2, d2.abs() == d, out);
                        }
                    }
                }
                ("min", [lhs, rhs]) => {
                    for (lit_side, other) in [(lhs, rhs), (rhs, lhs)] {
                        if let Some((a, s)) = lit_num(lit_side) {
                            // min(a, x) = o pins x = o whenever o < a;
                            // lowering the literal to d < o then
                            // recomputes to d regardless of x (x ≥ o > d).
                            let verified = if o < a {
                                d.min(o) == d
                            } else {
                                o == a && d < o
                            };
                            if d < o {
                                push_num(out, base, slice, note, a, s, d, verified);
                            }
                            if o < a && a.min(d) == d {
                                recurse_num(other, o, d, true, out);
                            }
                        }
                    }
                }
                ("max", [lhs, rhs]) => {
                    for (lit_side, other) in [(lhs, rhs), (rhs, lhs)] {
                        if let Some((a, s)) = lit_num(lit_side) {
                            let verified = if o > a {
                                d.max(o) == d
                            } else {
                                o == a && d > o
                            };
                            if d > o {
                                push_num(out, base, slice, note, a, s, d, verified);
                            }
                            if o > a && a.max(d) == d {
                                recurse_num(other, o, d, true, out);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        ExprKind::Unary {
            op: UnOp::Neg,
            expr: inner,
        } => {
            if let (Value::Number(o), Value::Number(d)) = (old, desired) {
                if let Some((n, span)) = lit_num(inner) {
                    // o = -n; the patched literal must stay non-negative
                    // so the text still lexes as one number under the
                    // `-`.
                    let n2 = -d;
                    if n2 >= 0.0 {
                        push_num(out, base, slice, note, n, span, n2, -n2 == *d);
                    }
                } else {
                    // Negation is float-exact: push the pair through.
                    recurse_num(inner, -o, -d, true, out);
                }
            }
        }
        _ => {}
    }
}

/// Recurse into a computed operand of a string concatenation: the
/// operand rendered as `old_text` and must now render as `new_text`.
/// The operand's *value* is unknowable from the outside, so both
/// readings are tried — a number (when the text round-trips through the
/// concat coercion) and a string; the wrong reading simply matches no
/// inversion deeper down.
#[allow(clippy::too_many_arguments)]
fn recurse_concat_operand(
    base: u32,
    slice: &str,
    sub: &Expr,
    old_text: &str,
    new_text: &str,
    env: &[(alive_core::types::Name, Value)],
    note: &str,
    out: &mut Vec<CandidateRepair>,
    depth: usize,
) {
    if let (Some(o), Some(d)) = (rendered_num(old_text), rendered_num(new_text)) {
        invert_rec(
            base,
            slice,
            sub,
            &Value::Number(o),
            &Value::Number(d),
            env,
            note,
            out,
            depth - 1,
        );
    }
    invert_rec(
        base,
        slice,
        sub,
        &Value::str(old_text),
        &Value::str(new_text),
        env,
        note,
        out,
        depth - 1,
    );
}

// ---------------------------------------------------------------------
// LiveSession integration — path-addressed selection, snapshot-guarded
// application.
// ---------------------------------------------------------------------

/// A parked repair offer: the ranked candidates from the last
/// direct-manipulation selection, plus the source snapshot they were
/// computed against (the apply-time staleness guard).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRepairs {
    pub(crate) source: String,
    pub(crate) repairs: Vec<CandidateRepair>,
}

/// Errors from the session-level repair workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairError {
    /// No text leaf at the requested path/ordinal in the current
    /// display (or the session has no renderable view).
    NoSuchLeaf,
    /// The selected leaf carries no provenance.
    NoProvenance,
    /// Provenance was present but produced no candidate (the desired
    /// value has no literal form and no operand inversion applied).
    NoCandidates,
    /// `apply_repair` without a pending offer.
    NoPending,
    /// The source changed since the offer was computed; the offer was
    /// withdrawn. Re-select to get fresh candidates.
    Stale,
    /// The candidate index is out of range for the pending offer.
    NoSuchCandidate(usize),
    /// The candidate edit failed to apply to the source.
    Edit(String),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::NoSuchLeaf => f.write_str("no text leaf at that selection"),
            RepairError::NoProvenance => f.write_str("the selected value has no provenance"),
            RepairError::NoCandidates => f.write_str("no repair inverts to the desired value"),
            RepairError::NoPending => f.write_str("no repair candidates are pending"),
            RepairError::Stale => {
                f.write_str("the source changed since the repairs were computed; re-select")
            }
            RepairError::NoSuchCandidate(n) => write!(f, "no repair candidate #{n}"),
            RepairError::Edit(e) => write!(f, "repair edit failed: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

/// Errors from the path-addressed attribute-edit workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrEditError {
    /// No box at the requested path in the current display.
    NoSuchBox,
    /// Computing the edit failed (see [`ManipulateError`]).
    Manipulate(ManipulateError),
    /// Applying the edit failed.
    Session(String),
}

impl fmt::Display for AttrEditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrEditError::NoSuchBox => f.write_str("no box at that path"),
            AttrEditError::Manipulate(e) => e.fmt(f),
            AttrEditError::Session(e) => f.write_str(e),
        }
    }
}

impl std::error::Error for AttrEditError {}

impl LiveSession {
    /// Select the `leaf`-th text leaf of the box at `path` in the
    /// current display and ask for its value to become `desired`
    /// (textual form, see [`parse_desired`]). Returns the ranked
    /// candidates, best first, and parks them for
    /// [`LiveSession::apply_repair`].
    ///
    /// Selection is resolved against the session's display and source
    /// *now* — a client that cached the path across source edits gets
    /// current-source candidates or a typed refusal, never a stale-span
    /// edit.
    ///
    /// # Errors
    ///
    /// See [`RepairError`].
    pub fn repairs_at(
        &mut self,
        path: &[usize],
        leaf: usize,
        desired: &str,
    ) -> Result<Vec<CandidateRepair>, RepairError> {
        let desired_value = parse_desired(desired);
        let tree = self.display_tree().ok_or(RepairError::NoSuchLeaf)?;
        let node = tree.descendant(path).ok_or(RepairError::NoSuchLeaf)?;
        let (old, prov) = node
            .leaf_with_provenance(leaf)
            .ok_or(RepairError::NoSuchLeaf)?;
        let prov = prov.ok_or(RepairError::NoProvenance)?;
        let repairs = repairs_for(self.source(), prov, old, &desired_value);
        if repairs.is_empty() {
            return Err(RepairError::NoCandidates);
        }
        self.set_pending_repairs(PendingRepairs {
            source: self.source().to_string(),
            repairs: repairs.clone(),
        });
        Ok(repairs)
    }

    /// Apply candidate `index` of the pending repair offer as a live
    /// edit. Refuses (and withdraws the offer) if the source has
    /// changed since [`LiveSession::repairs_at`] computed it — the
    /// candidates' spans address that snapshot, not the new text. The
    /// offer is consumed on a successfully applied edit and kept
    /// otherwise (rejection and quarantine both leave the source as the
    /// snapshot, so the remaining candidates stay valid).
    ///
    /// # Errors
    ///
    /// See [`RepairError`].
    pub fn apply_repair(&mut self, index: usize) -> Result<EditOutcome, RepairError> {
        let Some(pending) = self.pending_repairs() else {
            return Err(RepairError::NoPending);
        };
        let stale = pending.source != self.source();
        let candidate = if stale {
            None
        } else {
            pending.repairs.get(index).cloned()
        };
        if stale {
            self.clear_pending_repairs();
            return Err(RepairError::Stale);
        }
        let Some(candidate) = candidate else {
            return Err(RepairError::NoSuchCandidate(index));
        };
        let outcome = self
            .apply_text_edits(&[candidate.edit])
            .map_err(|e: SessionError| RepairError::Edit(e.to_string()))?;
        if outcome.is_applied() {
            self.clear_pending_repairs();
        }
        Ok(outcome)
    }

    /// Set `attr` of the box at `path` to the expression `value_src`
    /// and apply the resulting edit — [`attribute_edit`] resolved
    /// against the session's *current* display, program, and source, so
    /// protocol clients can never feed it stale spans.
    ///
    /// # Errors
    ///
    /// See [`AttrEditError`].
    pub fn attribute_edit_at(
        &mut self,
        path: &[usize],
        attr: Attr,
        value_src: &str,
    ) -> Result<EditOutcome, AttrEditError> {
        let tree = self.display_tree().ok_or(AttrEditError::NoSuchBox)?;
        let id = tree
            .descendant(path)
            .and_then(|n| n.source)
            .ok_or(AttrEditError::NoSuchBox)?;
        let edit = attribute_edit(self.source(), self.system().program(), id, attr, value_src)
            .map_err(AttrEditError::Manipulate)?;
        self.apply_text_edits(&[edit])
            .map_err(|e| AttrEditError::Session(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigation::span_for_box;
    use crate::session::LiveSession;
    use alive_core::compile;
    use alive_syntax::apply_edits;

    const SRC: &str = r#"page start() {
    render {
        boxed {
            box.margin := 4;
            post "header";
        }
        boxed { post "body"; }
    }
}"#;

    fn id_of_box(session_src: &str, needle: &str) -> (Program, BoxSourceId) {
        let program = compile(session_src).expect("compiles");
        let pos = session_src.find(needle).expect("found") as u32;
        let id = crate::navigation::box_source_at(&program, pos).expect("in a box");
        (program, id)
    }

    #[test]
    fn rewrites_existing_attribute_value() {
        let (program, id) = id_of_box(SRC, "header");
        let edit = attribute_edit(SRC, &program, id, Attr::Margin, "8").expect("edits");
        let out = apply_edits(SRC, &[edit]).expect("applies");
        assert!(out.contains("box.margin := 8;"), "{out}");
        assert!(!out.contains(":= 4"), "{out}");
    }

    #[test]
    fn inserts_missing_attribute() {
        let (program, id) = id_of_box(SRC, "body");
        let edit = attribute_edit(SRC, &program, id, Attr::Background, "colors.light_blue")
            .expect("edits");
        let out = apply_edits(SRC, &[edit]).expect("applies");
        assert!(
            out.contains("boxed { box.background := colors.light_blue; post \"body\"; }"),
            "{out}"
        );
        // The patched program still compiles.
        compile(&out).expect("patched program compiles");
    }

    #[test]
    fn bad_value_is_rejected() {
        let (program, id) = id_of_box(SRC, "body");
        assert!(matches!(
            attribute_edit(SRC, &program, id, Attr::Margin, "4 +"),
            Err(ManipulateError::BadValue(_))
        ));
    }

    #[test]
    fn end_to_end_direct_manipulation() {
        // The paper's I1 improvement: select a box in the live view,
        // change its margin, watch code and view update together.
        let mut session = LiveSession::new(SRC).expect("starts");
        let display = session.display_tree().expect("renders");
        // Select the header box in the live view (path [0]) — code side
        // shows its boxed statement.
        let span = span_for_box(session.system().program(), &display, &[0]).expect("navigates");
        assert!(span.slice(session.source()).contains("header"));
        // Now manipulate: margin 4 → 2.
        let id = display
            .descendant(&[0])
            .expect("box")
            .source
            .expect("has source");
        let edit = attribute_edit(
            session.source(),
            session.system().program(),
            id,
            Attr::Margin,
            "2",
        )
        .expect("edit computed");
        let outcome = session.apply_text_edits(&[edit]).expect("applies");
        assert!(outcome.is_applied());
        assert!(session.source().contains("box.margin := 2;"));
        // And the live view reflects it: margin 2 indents "header" by 2.
        let view = session.live_view();
        assert!(view.contains("  header"), "{view}");
    }

    #[test]
    fn remove_attribute_deletes_the_statement() {
        let (program, id) = id_of_box(SRC, "header");
        let edit = remove_attribute_edit(SRC, &program, id, Attr::Margin)
            .expect("computes")
            .expect("attribute present");
        let out = apply_edits(SRC, &[edit]).expect("applies");
        assert!(!out.contains("box.margin"), "{out}");
        compile(&out).expect("still compiles");
        // Removing an absent attribute is a no-op.
        let (program, id) = id_of_box(&out, "header");
        assert_eq!(
            remove_attribute_edit(&out, &program, id, Attr::Margin).expect("computes"),
            None
        );
    }

    #[test]
    fn add_then_remove_roundtrips_cleanly() {
        let mut session = LiveSession::new(SRC).expect("starts");
        let display = session.display_tree().expect("renders");
        let id = display.descendant(&[1]).expect("box").source.expect("id");
        let add = attribute_edit(
            session.source(),
            session.system().program(),
            id,
            Attr::Border,
            "1",
        )
        .expect("edit");
        session.apply_text_edits(&[add]).expect("applies");
        assert!(session.source().contains("box.border := 1;"));

        let display = session.display_tree().expect("renders");
        let id = display.descendant(&[1]).expect("box").source.expect("id");
        let remove = remove_attribute_edit(
            session.source(),
            session.system().program(),
            id,
            Attr::Border,
        )
        .expect("computes")
        .expect("present");
        session.apply_text_edits(&[remove]).expect("applies");
        assert!(!session.source().contains("box.border"));
        // Clean roundtrip: back to the original text.
        assert_eq!(session.source(), SRC);
    }

    #[test]
    fn nested_boxed_targets_the_inner_statement() {
        let src = r#"page start() {
    render {
        boxed { boxed { post "inner"; } }
    }
}"#;
        let (program, id) = id_of_box(src, "inner");
        let edit = attribute_edit(src, &program, id, Attr::Margin, "1").expect("edits");
        let out = apply_edits(src, &[edit]).expect("applies");
        assert!(
            out.contains(r#"boxed { box.margin := 1; post "inner"; }"#),
            "{out}"
        );
    }

    // -----------------------------------------------------------------
    // Ranked value repairs.
    // -----------------------------------------------------------------

    use alive_core::{Provenance, Value};
    use std::sync::Arc;

    /// An `Expr` provenance over the occurrence of `frag` in `source`,
    /// with the given captured environment.
    fn prov_expr(source: &str, frag: &str, env: Vec<(&str, Value)>) -> Provenance {
        let start = source.find(frag).expect("fragment present") as u32;
        Provenance::Expr {
            span: Span::new(start, start + frag.len() as u32),
            env: Arc::new(
                env.into_iter()
                    .map(|(n, v)| (Arc::<str>::from(n), v))
                    .collect(),
            ),
        }
    }

    #[test]
    fn desired_values_parse_to_their_natural_types() {
        assert_eq!(parse_desired("42"), Value::Number(42.0));
        assert_eq!(parse_desired(" -3.5 "), Value::Number(-3.5));
        assert_eq!(parse_desired("true"), Value::Bool(true));
        assert_eq!(parse_desired("\"quoted\""), Value::str("quoted"));
        assert_eq!(parse_desired("bare text"), Value::str("bare text"));
    }

    #[test]
    fn subtraction_and_division_invert_their_literal_operand() {
        // x - 5 rendered 5 (so x = 10); want 3 → literal becomes 7.
        let src = "post x - 5;";
        let prov = prov_expr(src, "x - 5", vec![("x", Value::Number(10.0))]);
        let repairs = repairs_for(src, &prov, &Value::Number(5.0), &Value::Number(3.0));
        assert_eq!(repairs[0].rank, 1, "{repairs:?}");
        assert_eq!(repairs[0].edit.replacement, "7");
        assert_eq!(repairs[0].edit.span.slice(src), "5");
        assert!(repairs[0].description.contains("(with x = 10)"));

        // 10 / x rendered 2 (x = 5); want 4 → literal becomes 20.
        let src = "post 10 / x;";
        let prov = prov_expr(src, "10 / x", vec![("x", Value::Number(5.0))]);
        let repairs = repairs_for(src, &prov, &Value::Number(2.0), &Value::Number(4.0));
        assert_eq!(repairs[0].rank, 1, "{repairs:?}");
        assert_eq!(repairs[0].edit.replacement, "20");
        assert_eq!(repairs[0].edit.span.slice(src), "10");
        // The rank-2 whole-expression fallback is always offered too.
        assert_eq!(repairs.last().expect("fallback").rank, 2);
    }

    #[test]
    fn concatenation_inverts_the_string_literal_side() {
        let src = r#"post name ++ "!";"#;
        let prov = prov_expr(src, r#"name ++ "!""#, vec![("name", Value::str("hi"))]);
        let repairs = repairs_for(src, &prov, &Value::str("hi!"), &Value::str("hi?"));
        assert_eq!(repairs[0].rank, 1, "{repairs:?}");
        assert_eq!(repairs[0].edit.replacement, "\"?\"");
        assert_eq!(repairs[0].edit.span.slice(src), "\"!\"");
    }

    #[test]
    fn negation_patches_the_inner_literal() {
        let src = "post -5;";
        let prov = prov_expr(src, "-5", vec![]);
        let repairs = repairs_for(src, &prov, &Value::Number(-5.0), &Value::Number(-9.0));
        assert_eq!(repairs[0].rank, 1, "{repairs:?}");
        assert_eq!(repairs[0].edit.replacement, "9");
        assert_eq!(repairs[0].edit.span.slice(src), "5");
    }

    #[test]
    fn prim_min_max_invert_the_literal_bound() {
        // math.min(x, 100) rendered 42 (so x = 42, pinned by 42 < 100);
        // want 30 → the bound drops to 30 and min(42, 30) recomputes
        // to exactly 30.
        let src = "post math.min(x, 100);";
        let prov = prov_expr(src, "math.min(x, 100)", vec![("x", Value::Number(42.0))]);
        let repairs = repairs_for(src, &prov, &Value::Number(42.0), &Value::Number(30.0));
        assert_eq!(repairs[0].rank, 1, "{repairs:?}");
        assert_eq!(repairs[0].edit.replacement, "30");
        assert_eq!(repairs[0].edit.span.slice(src), "100");

        // math.max(0, x) rendered 0 (the floor won, so x ≤ 0); want 5 →
        // raising the floor to 5 recomputes to 5 for every such x.
        let src = "post math.max(0, x);";
        let prov = prov_expr(src, "math.max(0, x)", vec![("x", Value::Number(-3.0))]);
        let repairs = repairs_for(src, &prov, &Value::Number(0.0), &Value::Number(5.0));
        assert_eq!(repairs[0].rank, 1, "{repairs:?}");
        assert_eq!(repairs[0].edit.replacement, "5");
        assert_eq!(repairs[0].edit.span.slice(src), "0");
    }

    #[test]
    fn min_passthrough_recurses_into_the_computed_operand() {
        // min(x + 2, 100) rendered 12 (x = 10); want 40 — the bound
        // stays, the computed side's literal solves: x + 30 = 40 and
        // min(100, 40) = 40.
        let src = "post math.min(x + 2, 100);";
        let prov = prov_expr(
            src,
            "math.min(x + 2, 100)",
            vec![("x", Value::Number(10.0))],
        );
        let repairs = repairs_for(src, &prov, &Value::Number(12.0), &Value::Number(40.0));
        let solved: Vec<_> = repairs
            .iter()
            .filter(|r| r.rank == 1 && r.edit.span.slice(src) == "2")
            .collect();
        assert_eq!(solved.len(), 1, "{repairs:?}");
        assert_eq!(solved[0].edit.replacement, "30");
    }

    #[test]
    fn abs_passthrough_pins_the_operand_sign_from_the_env() {
        // math.abs(x - 9) rendered 5 with x = 4: the operand was -5, so
        // asking for 2 rewrites the literal to 6 (abs(4 - 6) = 2). The
        // wrong-sign guess (9 → 12, valid only if the operand had been
        // +5) must not be offered: abs(4 - 12) = 8, not 2.
        let src = "post math.abs(x - 9);";
        let prov = prov_expr(src, "math.abs(x - 9)", vec![("x", Value::Number(4.0))]);
        let repairs = repairs_for(src, &prov, &Value::Number(5.0), &Value::Number(2.0));
        let lits: Vec<&str> = repairs
            .iter()
            .filter(|r| r.rank == 1)
            .map(|r| r.edit.replacement.as_str())
            .collect();
        assert_eq!(lits, vec!["6"], "{repairs:?}");
    }

    #[test]
    fn literal_provenance_repairs_in_place_through_the_session() {
        let mut session =
            LiveSession::new("page start() { render { boxed { post 4; } } }").expect("starts");
        let repairs = session.repairs_at(&[0], 0, "8").expect("candidates");
        assert_eq!(repairs[0].rank, 0);
        assert!(repairs[0]
            .description
            .contains("change the literal `4` to `8`"));
        let outcome = session.apply_repair(0).expect("applies");
        assert!(outcome.is_applied());
        assert!(session.source().contains("post 8;"));
        // The edited output value re-renders byte-identically.
        assert_eq!(session.live_view(), "8\n");
    }

    #[test]
    fn multiplication_inversion_re_renders_to_the_desired_value() {
        let src = "global n : number = 30\npage start() { render { boxed { post n * 12; } } }";
        let mut session = LiveSession::new(src).expect("starts");
        assert_eq!(session.live_view(), "360\n");
        let repairs = session.repairs_at(&[0], 0, "720").expect("candidates");
        assert_eq!(repairs[0].rank, 1, "{repairs:?}");
        assert!(session.apply_repair(0).expect("applies").is_applied());
        assert!(session.source().contains("n * 24"), "{}", session.source());
        assert_eq!(session.live_view(), "720\n");
    }

    #[test]
    fn let_bound_locals_are_captured_in_the_candidate_description() {
        let src = "page start() { render { boxed { let k = 3; post k + 4; } } }";
        let mut session = LiveSession::new(src).expect("starts");
        assert_eq!(session.live_view(), "7\n");
        let repairs = session.repairs_at(&[0], 0, "10").expect("candidates");
        assert_eq!(repairs[0].rank, 1, "{repairs:?}");
        assert!(
            repairs[0].description.contains("(with k = 3)"),
            "{:?}",
            repairs[0]
        );
        assert!(session.apply_repair(0).expect("applies").is_applied());
        assert!(
            session.source().contains("post k + 7;"),
            "{}",
            session.source()
        );
        assert_eq!(session.live_view(), "10\n");
    }

    #[test]
    fn stale_offers_refuse_and_reselect_recovers() {
        let mut session =
            LiveSession::new("page start() { render { boxed { post 4; } } }").expect("starts");
        session.repairs_at(&[0], 0, "8").expect("candidates");
        // Applying a bogus index keeps the offer.
        assert_eq!(
            session.apply_repair(5).err(),
            Some(RepairError::NoSuchCandidate(5))
        );
        // The source drifts: the offer is withdrawn on apply.
        let drifted = format!("// drift\n{}", session.source());
        assert!(session.edit_source(&drifted).is_applied());
        assert_eq!(session.apply_repair(0).err(), Some(RepairError::Stale));
        assert_eq!(session.apply_repair(0).err(), Some(RepairError::NoPending));
        // Re-selecting computes fresh spans against the new source.
        session.repairs_at(&[0], 0, "8").expect("candidates");
        assert!(session.apply_repair(0).expect("applies").is_applied());
        assert_eq!(session.live_view(), "8\n");
    }

    #[test]
    fn path_addressed_attribute_edit_survives_source_drift() {
        // The stale-source hole, regression-tested: a client selects a
        // box, the source is edited underneath it, then the client
        // manipulates. The library path with cached program spans
        // refuses (StatementNotFound); the path-addressed session API
        // recomputes everything from the current source and succeeds.
        let mut session = LiveSession::new(SRC).expect("starts");
        let display = session.display_tree().expect("renders");
        let id = display.descendant(&[0]).expect("box").source.expect("id");
        let old_program = compile(SRC).expect("compiles");
        let drifted = format!("// drift\n{}", session.source());
        assert!(session.edit_source(&drifted).is_applied());
        assert!(matches!(
            attribute_edit(session.source(), &old_program, id, Attr::Margin, "9"),
            Err(ManipulateError::StatementNotFound(_))
        ));
        let outcome = session
            .attribute_edit_at(&[0], Attr::Margin, "9")
            .expect("applies");
        assert!(outcome.is_applied());
        assert!(session.source().contains("box.margin := 9;"));
    }
}
