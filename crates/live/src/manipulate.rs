//! Direct manipulation — Section 3's third live feature.
//!
//! > "The programmer can directly change the attributes of a box in the
//! > live view, where the code view is updated automatically to reflect
//! > these changes. ... to insert a command to change the size of a
//! > margin, the programmer can first select the corresponding box in
//! > the live view and then choose the margin property from a button
//! > menu, which inserts (if not present) a command in the code."
//!
//! [`attribute_edit`] computes the [`TextEdit`] for such a change: it
//! re-parses the current source, finds the `boxed` statement that
//! created the selected box, and either rewrites the value of an
//! existing `box.attr := ...;` statement or inserts a new one at the top
//! of the box body. The effects of manipulation are thereby "enshrined
//! in code" (paper §6).

use alive_core::expr::BoxSourceId;
use alive_core::{Attr, Program};
use alive_syntax::ast::{Block, Item, Stmt, StmtKind};
use alive_syntax::{parse_expr, parse_program, Span, TextEdit};
use std::fmt;

/// Errors computing a direct-manipulation edit.
#[derive(Debug, Clone, PartialEq)]
pub enum ManipulateError {
    /// The selected box has no `boxed` statement (the implicit root).
    NoSourceStatement,
    /// The statement's span was not found in the source (stale source).
    StatementNotFound(Span),
    /// The replacement value does not parse as an expression.
    BadValue(String),
}

impl fmt::Display for ManipulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManipulateError::NoSourceStatement => {
                f.write_str("the selected box was not created by a boxed statement")
            }
            ManipulateError::StatementNotFound(span) => {
                write!(f, "no boxed statement at {span} in the current source")
            }
            ManipulateError::BadValue(v) => {
                write!(f, "`{v}` does not parse as an expression")
            }
        }
    }
}

impl std::error::Error for ManipulateError {}

/// Compute the text edit that sets `attr` of the box created by the
/// `boxed` statement `id` to the expression `value_src`.
///
/// If the statement body already sets the attribute, the existing
/// value expression is replaced in place (so repeated manipulation
/// twiddles one number, exactly like the paper's margin example);
/// otherwise a new `box.attr := value;` statement is inserted at the
/// start of the body.
///
/// # Errors
///
/// See [`ManipulateError`].
pub fn attribute_edit(
    source: &str,
    program: &Program,
    id: BoxSourceId,
    attr: Attr,
    value_src: &str,
) -> Result<TextEdit, ManipulateError> {
    if parse_expr(value_src).is_err() {
        return Err(ManipulateError::BadValue(value_src.to_string()));
    }
    let span = program
        .box_span(id)
        .ok_or(ManipulateError::NoSourceStatement)?;
    let parsed = parse_program(source);
    let body =
        find_boxed_body(&parsed.program, span).ok_or(ManipulateError::StatementNotFound(span))?;

    // Rewrite an existing `box.attr := ...;` if present (direct
    // children only — nested boxes own their own attributes).
    for stmt in &body.stmts {
        if let StmtKind::SetAttr { attr: name, value } = &stmt.kind {
            if Attr::from_name(&name.text) == Some(attr) {
                return Ok(TextEdit::replace(value.span, value_src));
            }
        }
        // `on tap { ... }` sugar also sets handler attributes.
        if let StmtKind::On { event, .. } = &stmt.kind {
            if attr.is_handler() && Attr::from_name(&event.text) == Some(attr) {
                return Ok(TextEdit::replace(
                    stmt.span,
                    format!("box.{attr} := {value_src};"),
                ));
            }
        }
    }
    // Insert a new statement right after the opening brace.
    Ok(TextEdit::insert(
        body.span.start + 1,
        format!(" box.{attr} := {value_src};"),
    ))
}

/// Compute the text edit that removes an attribute setting from the box
/// created by `boxed` statement `id` (the "reset to default" button of a
/// property inspector). Returns `None` if the statement does not set the
/// attribute directly.
///
/// # Errors
///
/// See [`ManipulateError`].
pub fn remove_attribute_edit(
    source: &str,
    program: &Program,
    id: BoxSourceId,
    attr: Attr,
) -> Result<Option<TextEdit>, ManipulateError> {
    let span = program
        .box_span(id)
        .ok_or(ManipulateError::NoSourceStatement)?;
    let parsed = parse_program(source);
    let body =
        find_boxed_body(&parsed.program, span).ok_or(ManipulateError::StatementNotFound(span))?;
    for stmt in &body.stmts {
        let matches_attr = match &stmt.kind {
            StmtKind::SetAttr { attr: name, .. } => Attr::from_name(&name.text) == Some(attr),
            StmtKind::On { event, .. } => {
                attr.is_handler() && Attr::from_name(&event.text) == Some(attr)
            }
            _ => false,
        };
        if matches_attr {
            // Delete the statement plus any whitespace run up to it, so
            // repeated add/remove cycles do not accumulate blank space.
            let mut start = stmt.span.start as usize;
            let bytes = source.as_bytes();
            while start > 0 && (bytes[start - 1] == b' ' || bytes[start - 1] == b'\n') {
                start -= 1;
            }
            return Ok(Some(TextEdit::delete(Span::new(
                start as u32,
                stmt.span.end,
            ))));
        }
    }
    Ok(None)
}

/// Find the body block of the `boxed` statement at exactly `span`.
fn find_boxed_body(program: &alive_syntax::Program, span: Span) -> Option<&Block> {
    fn in_block(block: &Block, span: Span) -> Option<&Block> {
        for stmt in &block.stmts {
            if let Some(found) = in_stmt(stmt, span) {
                return Some(found);
            }
        }
        None
    }

    fn in_stmt(stmt: &Stmt, span: Span) -> Option<&Block> {
        match &stmt.kind {
            StmtKind::Boxed { body } => {
                if stmt.span == span {
                    return Some(body);
                }
                in_block(body, span)
            }
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => in_block(then_block, span)
                .or_else(|| else_block.as_ref().and_then(|b| in_block(b, span))),
            StmtKind::While { body, .. }
            | StmtKind::ForRange { body, .. }
            | StmtKind::Foreach { body, .. }
            | StmtKind::On { body, .. } => in_block(body, span),
            _ => None,
        }
    }

    for item in &program.items {
        let found = match item {
            Item::Fun(f) => in_block(&f.body, span),
            Item::Page(p) => in_block(&p.init, span).or_else(|| in_block(&p.render, span)),
            Item::Global(_) => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigation::span_for_box;
    use crate::session::LiveSession;
    use alive_core::compile;
    use alive_syntax::apply_edits;

    const SRC: &str = r#"page start() {
    render {
        boxed {
            box.margin := 4;
            post "header";
        }
        boxed { post "body"; }
    }
}"#;

    fn id_of_box(session_src: &str, needle: &str) -> (Program, BoxSourceId) {
        let program = compile(session_src).expect("compiles");
        let pos = session_src.find(needle).expect("found") as u32;
        let id = crate::navigation::box_source_at(&program, pos).expect("in a box");
        (program, id)
    }

    #[test]
    fn rewrites_existing_attribute_value() {
        let (program, id) = id_of_box(SRC, "header");
        let edit = attribute_edit(SRC, &program, id, Attr::Margin, "8").expect("edits");
        let out = apply_edits(SRC, &[edit]).expect("applies");
        assert!(out.contains("box.margin := 8;"), "{out}");
        assert!(!out.contains(":= 4"), "{out}");
    }

    #[test]
    fn inserts_missing_attribute() {
        let (program, id) = id_of_box(SRC, "body");
        let edit = attribute_edit(SRC, &program, id, Attr::Background, "colors.light_blue")
            .expect("edits");
        let out = apply_edits(SRC, &[edit]).expect("applies");
        assert!(
            out.contains("boxed { box.background := colors.light_blue; post \"body\"; }"),
            "{out}"
        );
        // The patched program still compiles.
        compile(&out).expect("patched program compiles");
    }

    #[test]
    fn bad_value_is_rejected() {
        let (program, id) = id_of_box(SRC, "body");
        assert!(matches!(
            attribute_edit(SRC, &program, id, Attr::Margin, "4 +"),
            Err(ManipulateError::BadValue(_))
        ));
    }

    #[test]
    fn end_to_end_direct_manipulation() {
        // The paper's I1 improvement: select a box in the live view,
        // change its margin, watch code and view update together.
        let mut session = LiveSession::new(SRC).expect("starts");
        let display = session.display_tree().expect("renders");
        // Select the header box in the live view (path [0]) — code side
        // shows its boxed statement.
        let span = span_for_box(session.system().program(), &display, &[0]).expect("navigates");
        assert!(span.slice(session.source()).contains("header"));
        // Now manipulate: margin 4 → 2.
        let id = display
            .descendant(&[0])
            .expect("box")
            .source
            .expect("has source");
        let edit = attribute_edit(
            session.source(),
            session.system().program(),
            id,
            Attr::Margin,
            "2",
        )
        .expect("edit computed");
        let outcome = session.apply_text_edits(&[edit]).expect("applies");
        assert!(outcome.is_applied());
        assert!(session.source().contains("box.margin := 2;"));
        // And the live view reflects it: margin 2 indents "header" by 2.
        let view = session.live_view();
        assert!(view.contains("  header"), "{view}");
    }

    #[test]
    fn remove_attribute_deletes_the_statement() {
        let (program, id) = id_of_box(SRC, "header");
        let edit = remove_attribute_edit(SRC, &program, id, Attr::Margin)
            .expect("computes")
            .expect("attribute present");
        let out = apply_edits(SRC, &[edit]).expect("applies");
        assert!(!out.contains("box.margin"), "{out}");
        compile(&out).expect("still compiles");
        // Removing an absent attribute is a no-op.
        let (program, id) = id_of_box(&out, "header");
        assert_eq!(
            remove_attribute_edit(&out, &program, id, Attr::Margin).expect("computes"),
            None
        );
    }

    #[test]
    fn add_then_remove_roundtrips_cleanly() {
        let mut session = LiveSession::new(SRC).expect("starts");
        let display = session.display_tree().expect("renders");
        let id = display.descendant(&[1]).expect("box").source.expect("id");
        let add = attribute_edit(
            session.source(),
            session.system().program(),
            id,
            Attr::Border,
            "1",
        )
        .expect("edit");
        session.apply_text_edits(&[add]).expect("applies");
        assert!(session.source().contains("box.border := 1;"));

        let display = session.display_tree().expect("renders");
        let id = display.descendant(&[1]).expect("box").source.expect("id");
        let remove = remove_attribute_edit(
            session.source(),
            session.system().program(),
            id,
            Attr::Border,
        )
        .expect("computes")
        .expect("present");
        session.apply_text_edits(&[remove]).expect("applies");
        assert!(!session.source().contains("box.border"));
        // Clean roundtrip: back to the original text.
        assert_eq!(session.source(), SRC);
    }

    #[test]
    fn nested_boxed_targets_the_inner_statement() {
        let src = r#"page start() {
    render {
        boxed { boxed { post "inner"; } }
    }
}"#;
        let (program, id) = id_of_box(src, "inner");
        let edit = attribute_edit(src, &program, id, Attr::Margin, "1").expect("edits");
        let out = apply_edits(src, &[edit]).expect("applies");
        assert!(
            out.contains(r#"boxed { box.margin := 1; post "inner"; }"#),
            "{out}"
        );
    }
}
