//! The Figure 2 split screen: live view on the left, code view on the
//! right, with the bidirectional selection rendered — tapping a box
//! highlights its `boxed` statement, and selecting a statement
//! highlights all the boxes it created.
//!
//! Everything is plain text (with optional ANSI highlighting), so the
//! paper's signature screenshot can be reproduced in a terminal and
//! asserted on in tests.

use crate::navigation::{box_source_at, span_for_box};
use crate::session::LiveSession;
use alive_core::boxtree::BoxNode;
use alive_syntax::token::TokenKind;
use alive_syntax::{Diagnostics, Span};
use alive_ui::{layout, render_with_options, RenderOptions};
use std::sync::Arc;

/// What is currently selected in the split view.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Selection {
    /// Nothing selected.
    #[default]
    None,
    /// A box was selected in the live view (by path).
    Box(Vec<usize>),
    /// A cursor position was selected in the code view (byte offset).
    Cursor(u32),
}

/// Options for the split view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitViewOptions {
    /// Total width in columns.
    pub width: usize,
    /// Width of the live (left) pane.
    pub live_pane: usize,
    /// Use ANSI colors (syntax highlighting + selection inverse video).
    pub ansi: bool,
    /// Zoom-out factor for the live pane (1 = full size) — §5's
    /// "automatically scaled down to fit on a smaller portion of the
    /// screen".
    pub zoom: usize,
}

impl Default for SplitViewOptions {
    fn default() -> Self {
        SplitViewOptions {
            width: 100,
            live_pane: 40,
            ansi: false,
            zoom: 1,
        }
    }
}

/// Render the Figure 2 split screen for a session with a selection.
///
/// The selected box (or the boxes created by the statement under the
/// cursor) are outlined in the live pane with `●` gutter markers; the
/// corresponding statement lines get `▶` markers in the code pane.
///
/// Total, like [`LiveSession::live_view`]: a session whose renders
/// fault shows its last good tree (and an empty live pane if it never
/// had one); the code pane always shows the current source.
pub fn split_view(
    session: &mut LiveSession,
    selection: &Selection,
    options: SplitViewOptions,
) -> String {
    // A session with no renderable view still has a code pane to show —
    // an empty box tree stands in for the live pane.
    let display = session
        .display_tree()
        .unwrap_or_else(|| Arc::new(BoxNode::new(None)));
    let program = session.system().program();
    let source = session.source();

    // Resolve the selection to (boxes, span) in both directions.
    let (selected_boxes, selected_span): (Vec<Vec<usize>>, Option<Span>) = match selection {
        Selection::None => (Vec::new(), None),
        Selection::Box(path) => {
            let span = span_for_box(program, &display, path);
            (vec![path.clone()], span)
        }
        Selection::Cursor(pos) => match box_source_at(program, *pos) {
            Some(id) => (display.find_by_source(id), program.box_span(id)),
            None => (Vec::new(), None),
        },
    };

    // Left pane: the live view with all boxes outlined (inspection
    // mode), selected boxes marked in the gutter.
    let tree = layout(&display);
    let live_text = if options.zoom > 1 {
        alive_ui::render_zoomed_out(&tree, options.zoom)
    } else {
        render_with_options(
            &tree,
            RenderOptions {
                outline_all_boxes: false,
                ..RenderOptions::default()
            },
        )
    };
    let zoom = options.zoom.max(1) as i32;
    let selected_rows: Vec<(i32, i32)> = selected_boxes
        .iter()
        .filter_map(|p| tree.by_path(p))
        .map(|b| {
            let top = b.rect.top() / zoom;
            let bottom = (b.rect.bottom().max(b.rect.top() + 1) + zoom - 1) / zoom;
            (top, bottom)
        })
        .collect();
    let mut left_lines: Vec<String> = Vec::new();
    for (row, line) in live_text.lines().enumerate() {
        let marked = selected_rows
            .iter()
            .any(|&(top, bottom)| (row as i32) >= top && (row as i32) < bottom);
        let gutter = if marked { "●" } else { " " };
        left_lines.push(format!("{gutter} {line}"));
    }

    // Right pane: the code with the selected statement marked.
    let (sel_start_line, sel_end_line) = match selected_span {
        Some(span) => {
            let map = alive_syntax::SourceMap::new(source);
            (
                map.line_col(span.start).line as usize,
                map.line_col(span.end.saturating_sub(1)).line as usize,
            )
        }
        None => (0, 0),
    };
    let mut right_lines: Vec<String> = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let line_no = i + 1;
        let marked = line_no >= sel_start_line && line_no <= sel_end_line && sel_start_line > 0;
        let marker = if marked { "▶" } else { " " };
        let shown = if options.ansi {
            highlight_line(line)
        } else {
            line.to_string()
        };
        right_lines.push(format!("{marker}{line_no:>3} {shown}"));
    }

    // Stitch the panes.
    let rows = left_lines.len().max(right_lines.len());
    let mut out = String::new();
    let live_w = options.live_pane;
    out.push_str(&format!(
        "{:<live_w$} │ {}\n",
        "── live view ──", "── code view ──"
    ));
    for i in 0..rows {
        let left_raw = left_lines.get(i).map(String::as_str).unwrap_or("");
        let left: String = left_raw.chars().take(live_w).collect();
        let pad = live_w.saturating_sub(left.chars().count());
        let right = right_lines.get(i).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{left}{} │ {right}\n", " ".repeat(pad)));
    }
    out
}

/// ANSI syntax highlighting of one source line, by lexer token class.
pub fn highlight_line(line: &str) -> String {
    let mut diags = Diagnostics::new();
    let tokens = alive_syntax::lexer::lex(line, &mut diags);
    let mut out = String::new();
    let mut cursor = 0usize;
    for token in tokens {
        if matches!(token.kind, TokenKind::Eof) {
            break;
        }
        let start = token.span.start as usize;
        let end = token.span.end as usize;
        out.push_str(&line[cursor..start]);
        let text = &line[start..end];
        let color = match &token.kind {
            TokenKind::Global
            | TokenKind::Fun
            | TokenKind::Page
            | TokenKind::Init
            | TokenKind::Render
            | TokenKind::Pure
            | TokenKind::State
            | TokenKind::Let
            | TokenKind::If
            | TokenKind::Else
            | TokenKind::While
            | TokenKind::For
            | TokenKind::Foreach
            | TokenKind::In
            | TokenKind::Fn
            | TokenKind::On => Some("1;35"), // bold magenta: keywords
            TokenKind::Boxed | TokenKind::Post | TokenKind::Box_ => Some("1;36"),
            TokenKind::Push | TokenKind::Pop => Some("1;33"),
            TokenKind::Str(_) => Some("32"), // green: strings
            TokenKind::Number(_) | TokenKind::True | TokenKind::False => Some("36"),
            TokenKind::TyNumber
            | TokenKind::TyString
            | TokenKind::TyBool
            | TokenKind::TyColor
            | TokenKind::TyList => Some("34"),
            _ => None,
        };
        match color {
            Some(c) => {
                out.push_str(&format!("\x1b[{c}m{text}\x1b[0m"));
            }
            None => out.push_str(text),
        }
        cursor = end;
    }
    out.push_str(&line[cursor.min(line.len())..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ui::strip_ansi;

    const SRC: &str = r#"page start() {
    render {
        boxed { post "header"; }
        for i in 0 .. 3 {
            boxed { post i; }
        }
    }
}"#;

    #[test]
    fn split_view_shows_both_panes() {
        let mut s = LiveSession::new(SRC).expect("starts");
        let view = split_view(&mut s, &Selection::None, SplitViewOptions::default());
        assert!(view.contains("live view"));
        assert!(view.contains("code view"));
        assert!(view.contains("header"));
        assert!(view.contains("boxed { post \"header\"; }"));
        assert!(view.lines().all(|l| l.contains('│')));
    }

    #[test]
    fn box_selection_marks_the_statement() {
        let mut s = LiveSession::new(SRC).expect("starts");
        let view = split_view(
            &mut s,
            &Selection::Box(vec![0]),
            SplitViewOptions::default(),
        );
        // The statement line 3 carries the ▶ marker...
        let marked: Vec<&str> = view.lines().filter(|l| l.contains('▶')).collect();
        assert_eq!(marked.len(), 1, "{view}");
        assert!(marked[0].contains("post \"header\""));
        // ...and the header box row carries the ● marker.
        assert!(view.lines().next().is_some());
        let bullet_rows: Vec<&str> = view.lines().filter(|l| l.starts_with('●')).collect();
        assert_eq!(bullet_rows.len(), 1);
        assert!(bullet_rows[0].contains("header"));
    }

    #[test]
    fn cursor_selection_marks_all_loop_boxes() {
        let mut s = LiveSession::new(SRC).expect("starts");
        let cursor = SRC.find("post i").expect("found") as u32;
        let view = split_view(
            &mut s,
            &Selection::Cursor(cursor),
            SplitViewOptions::default(),
        );
        // Three boxes from the loop → three ● rows.
        let bullet_rows = view.lines().filter(|l| l.starts_with('●')).count();
        assert_eq!(bullet_rows, 3, "{view}");
    }

    #[test]
    fn zoomed_split_view_shrinks_the_live_pane() {
        let mut s = LiveSession::new(SRC).expect("starts");
        let full = split_view(&mut s, &Selection::None, SplitViewOptions::default());
        let zoomed = split_view(
            &mut s,
            &Selection::Box(vec![0]),
            SplitViewOptions {
                zoom: 2,
                ..SplitViewOptions::default()
            },
        );
        // The code pane is unchanged in height; the live pane content
        // occupies fewer rows (blank left cells beyond the zoomed view).
        assert_eq!(zoomed.lines().count(), full.lines().count());
        assert!(zoomed.contains('▪'), "blocks in the zoomed pane: {zoomed}");
        // Selection gutter still lands on the (zoomed) header row.
        assert!(zoomed.lines().any(|l| l.starts_with('●')), "{zoomed}");
    }

    #[test]
    fn highlighting_is_ansi_and_strippable() {
        let line = r#"global count : number = 0 // note"#;
        let colored = highlight_line(line);
        assert!(colored.contains("\x1b["));
        assert_eq!(strip_ansi(&colored), line);
        // Strings keep their quotes.
        let s = highlight_line(r#"post "hi";"#);
        assert_eq!(strip_ansi(&s), r#"post "hi";"#);
    }
}
