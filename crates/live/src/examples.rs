//! Babylonian live examples — continuously evaluated probes.
//!
//! An `example name = expr [expect expr]` item is a pure expression the
//! environment re-evaluates on every edit and every model change, in
//! the style of Babylonian/example-based programming (Rauch et al.):
//! the programmer sees concrete values for the code under edit, always
//! up to date, without running anything by hand. An `expect` clause
//! turns the probe into a live assertion: the probe reports pass/fail
//! continuously instead of only printing the value.
//!
//! Probes evaluate against the *running model* (the store), so an
//! example over a global shows the live value, not the initial one.
//! Evaluation goes through the session's configured engine — the
//! bytecode VM when the program compiled into the VM subset, the
//! bigstep tree walker otherwise — and the two must agree byte-for-byte
//! (held by `tests/` alongside the vm differential suite).

use alive_core::bigstep;
use alive_core::error::RuntimeError;
use alive_core::store::Store;
use alive_core::system::{EvalEngine, System};
use alive_core::value::Value;
use alive_core::vm::{self, Scratch};
use alive_core::Program;
use std::fmt;

/// The status of one probe after evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeStatus {
    /// No `expect` clause: the probe just shows its value.
    Value,
    /// `expect` present and both sides evaluated to equal values.
    Pass,
    /// `expect` present and the sides disagree; carries the rendered
    /// expected value.
    Fail {
        /// The rendered value of the `expect` clause.
        expected: String,
    },
    /// The body (or the `expect` clause) faulted; the probe's `value`
    /// is the rendered runtime error.
    Fault,
}

/// One evaluated live example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExampleProbe {
    /// The example's name.
    pub name: String,
    /// Rendered probe value (or the fault text for [`ProbeStatus::Fault`]).
    pub value: String,
    /// Pass/fail/value status.
    pub status: ProbeStatus,
}

impl ExampleProbe {
    /// One-line rendering, stable across engines — the wire and panel
    /// format: `name = value`, `name = value ok`, `name = value,
    /// expected <e>`, or `name faulted: <err>`.
    pub fn render_line(&self) -> String {
        match &self.status {
            ProbeStatus::Value => format!("{} = {}", self.name, self.value),
            ProbeStatus::Pass => format!("{} = {} ok", self.name, self.value),
            ProbeStatus::Fail { expected } => {
                format!("{} = {}, expected {}", self.name, self.value, expected)
            }
            ProbeStatus::Fault => format!("{} faulted: {}", self.name, self.value),
        }
    }
}

impl fmt::Display for ExampleProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_line())
    }
}

/// Counters for the probe cache: how often [`crate::LiveSession::examples`]
/// answered from cache vs re-evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExampleStats {
    /// Full recomputations (cache misses).
    pub computes: u64,
    /// Answers served from the `(version, generation)`-keyed cache.
    pub hits: u64,
}

/// The session-side probe cache. Results are keyed by `(program
/// version, display generation)`: every model change is followed by a
/// RENDER that bumps the display generation, and every code change
/// bumps the version, so equal keys mean equal probe inputs.
#[derive(Debug, Default)]
pub(crate) struct ExampleCache {
    key: Option<(u64, u64)>,
    probes: Vec<ExampleProbe>,
    scratch: Scratch,
    pub(crate) stats: ExampleStats,
}

impl ExampleCache {
    /// Evaluate every example of the system's program, reusing the
    /// cached result when neither code nor model changed.
    pub(crate) fn probes(&mut self, system: &System) -> Vec<ExampleProbe> {
        let key = (system.version(), system.display_generation());
        if self.key == Some(key) {
            self.stats.hits += 1;
            return self.probes.clone();
        }
        self.stats.computes += 1;
        self.probes = evaluate_examples(
            system.program(),
            system.store(),
            system.version(),
            system.config().fuel,
            system.config().engine,
            &mut self.scratch,
        );
        self.key = Some(key);
        self.probes.clone()
    }

    /// Drop the cached result (used when the system is replaced
    /// wholesale, e.g. a fleet revert restoring a checkpoint).
    pub(crate) fn invalidate(&mut self) {
        self.key = None;
    }
}

/// Evaluate one pure example expression through the chosen engine.
/// `expect` selects the example's `expect` clause instead of its body.
#[allow(clippy::too_many_arguments)]
fn eval_probe_expr(
    program: &Program,
    store: &Store,
    version: u64,
    fuel: u64,
    engine: EvalEngine,
    scratch: &mut Scratch,
    index: usize,
    expect: bool,
) -> Result<Value, RuntimeError> {
    if engine == EvalEngine::Vm {
        if let Some(vmp) = program.vm() {
            if let Some(run) = vm::run_example(&vmp, scratch, store, version, fuel, index, expect) {
                return run.result;
            }
        }
    }
    let def = &program.examples()[index];
    let expr = if expect {
        def.expect.as_ref().unwrap_or(&def.body)
    } else {
        &def.body
    };
    bigstep::run_pure(program, store, version, fuel, expr).map(|(v, _)| v)
}

/// Evaluate every example in `program` against `store`.
pub(crate) fn evaluate_examples(
    program: &Program,
    store: &Store,
    version: u64,
    fuel: u64,
    engine: EvalEngine,
    scratch: &mut Scratch,
) -> Vec<ExampleProbe> {
    let mut out = Vec::with_capacity(program.examples().len());
    for (index, def) in program.examples().iter().enumerate() {
        let name = def.name.to_string();
        let body = eval_probe_expr(program, store, version, fuel, engine, scratch, index, false);
        let probe = match body {
            Err(e) => ExampleProbe {
                name,
                value: e.to_string(),
                status: ProbeStatus::Fault,
            },
            Ok(value) => {
                let rendered = value.display_text();
                match &def.expect {
                    None => ExampleProbe {
                        name,
                        value: rendered,
                        status: ProbeStatus::Value,
                    },
                    Some(_) => {
                        let expect_val = eval_probe_expr(
                            program, store, version, fuel, engine, scratch, index, true,
                        );
                        match expect_val {
                            Err(e) => ExampleProbe {
                                name,
                                value: e.to_string(),
                                status: ProbeStatus::Fault,
                            },
                            Ok(expected) if expected == value => ExampleProbe {
                                name,
                                value: rendered,
                                status: ProbeStatus::Pass,
                            },
                            Ok(expected) => ExampleProbe {
                                name,
                                value: rendered,
                                status: ProbeStatus::Fail {
                                    expected: expected.display_text(),
                                },
                            },
                        }
                    }
                }
            }
        };
        out.push(probe);
    }
    out
}
