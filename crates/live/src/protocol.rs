//! The session command/effect protocol — one total entry point for
//! everything a frontend (or a host) can ask of a [`LiveSession`].
//!
//! The paper's live loop is a conversation: the user acts (tap, back,
//! edit), the machine answers with a frame (or a banner over the last
//! good one). This module reifies that conversation as data:
//!
//! * [`SessionCommand`] — every request a frontend can make, as a plain
//!   serializable value (text wire format, [`SessionCommand::serialize`]
//!   / [`parse_commands`]);
//! * [`SessionEffect`] — every answer the session can give, also
//!   serializable ([`SessionEffect::serialize`]) so hosts can log or
//!   fan effects out to remote observers;
//! * [`LiveSession::apply`] — the single *total* dispatcher: every
//!   command produces effects, never an error. Failures travel inside
//!   [`SessionEffect::Refused`], exactly like faults travel inside
//!   banners.
//!
//! Both alive-repl and alive-watch run entirely through this surface,
//! so a networked host driving sessions over a wire sees byte-identical
//! frames to a local frontend — there is no privileged side channel.

use crate::examples::ExampleProbe;
use crate::pipeline::FrameStats;
use crate::repair::CandidateRepair;
use crate::session::{EditOutcome, LiveSession, UndoOutcome};
use alive_core::boxtree::BoxNode;
use alive_core::fixup::FixupReport;
use alive_core::persist::LoadReport;
use alive_core::Attr;
use alive_core::Fault;
use alive_obs::MetricsSnapshot;
use alive_syntax::{Diagnostics, Span, TextEdit};
use std::fmt;
use std::sync::Arc;

/// A request a frontend (or host) makes of a live session.
///
/// Commands are plain data: no callbacks, no references into the
/// session. The text wire format round-trips via
/// [`SessionCommand::serialize`] and [`parse_commands`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionCommand {
    /// Render (settling first) and return the current frame.
    Frame,
    /// Tap the box under a point in layout coordinates.
    TapAt {
        /// Column, 0-based.
        x: i32,
        /// Row, 0-based.
        y: i32,
    },
    /// Tap the box at a child-index path.
    TapPath(Vec<usize>),
    /// Press the back button (pop the current page).
    Back,
    /// Edit a text box in place (fires its `onedit` handler).
    EditBox {
        /// Child-index path to the box.
        path: Vec<usize>,
        /// Replacement text.
        text: String,
    },
    /// Replace the whole source text — one keystroke of the paper's
    /// continuous edit loop.
    EditSource(String),
    /// Undo the most recent applied edit.
    Undo,
    /// Redo the most recently undone edit.
    Redo,
    /// Ask for the current source text.
    Source,
    /// Ask for frame-pipeline reuse statistics (settles and renders
    /// first, so the counters describe the current frame).
    Stats,
    /// Ask for a [`MetricsSnapshot`] of every metric the session (and
    /// its system) has recorded. Settles first, so the counters
    /// reconcile with the session's observable history (fault log,
    /// update counts, display generation).
    Metrics,
    /// Evaluate the program's Babylonian live examples (settling and
    /// rendering first, so probes see the current model) and return one
    /// probe per `example` item.
    Examples,
    /// Snapshot the model (persistent data) to its text format.
    Snapshot,
    /// Restore a model snapshot against the current code.
    Restore(String),
    /// Open an edit transaction: stage a copy of the current source for
    /// batched edits. Solo sessions answer with the new transaction id;
    /// a host opens a *fleet* transaction against this session's source
    /// version (see `alive-serve`).
    TxOpen,
    /// Stage one batch of span-addressed edits on an open transaction.
    /// Spans address the staged text (the result of every batch staged
    /// so far); the running program is untouched until commit.
    TxEdit {
        /// The open transaction.
        tx: u64,
        /// The batch (simultaneous, non-overlapping — the
        /// [`alive_syntax::apply_edits`] contract).
        edits: Vec<TextEdit>,
    },
    /// Commit an open transaction: compile the staged batch once and
    /// apply it as one atomic UPDATE (fleet-wide, with a canary
    /// rollout, when hosted).
    TxCommit(u64),
    /// Abort an open transaction, discarding its staged edits.
    TxAbort(u64),
    /// Ask an open transaction's status (hosted: also advances a canary
    /// whose observation window has elapsed).
    TxStatus(u64),
    /// Bidirectional manipulation: select the `leaf`-th text leaf of
    /// the box at `path` and ask for its rendered value to become
    /// `value`. Answers with ranked [`SessionEffect::Repairs`] (parked
    /// for [`SessionCommand::ApplyRepair`]), or a refusal. Resolved
    /// against the session's *current* display and source, never cached
    /// spans.
    ManipulateAt {
        /// Child-index path to the box.
        path: Vec<usize>,
        /// Ordinal of the text leaf within the box.
        leaf: usize,
        /// Desired value, textual form (number, `true`/`false`,
        /// `"quoted"` or bare string).
        value: String,
    },
    /// Apply candidate `n` of the pending repair offer as a live edit.
    ApplyRepair(usize),
    /// Direct manipulation of a box attribute: set `attr` of the box at
    /// `path` to the expression `value`, enshrining the change in code
    /// (the paper's margin example) — resolved against the current
    /// display and source at apply time.
    AttrEdit {
        /// Child-index path to the box.
        path: Vec<usize>,
        /// Attribute name (`margin`, `background`, ...); unknown names
        /// are refused, keeping `apply` total.
        attr: String,
        /// Replacement value expression, source form.
        value: String,
    },
}

/// Where an edit transaction stands — the payload of
/// [`SessionEffect::Tx`]. Solo sessions only ever report `Open`,
/// `Promoted` (their single session updated), `RolledBack` (the commit
/// quarantined) and `Aborted`; the canary phase is a fleet notion.
#[derive(Debug, Clone, PartialEq)]
pub enum TxPhase {
    /// Open, accumulating batches.
    Open {
        /// Edits staged so far.
        edits: usize,
    },
    /// Committed and fanned out to the canary slice; the observation
    /// window is running ([`SessionCommand::TxStatus`] advances it).
    Canary {
        /// Sessions updated in the canary slice.
        canary: usize,
        /// Sessions subscribed to the base version in total.
        fleet: usize,
    },
    /// Promoted to the whole fleet.
    Promoted {
        /// Sessions now running the new version.
        updated: usize,
        /// Subscribed sessions skipped (diverged/busy/removed mid-rollout).
        skipped: usize,
    },
    /// Rolled back; every updated session was restored to its
    /// pre-transaction state.
    RolledBack {
        /// Sessions restored from their checkpoints.
        reverted: usize,
        /// Why (the canary fault spike, or the immediate fault).
        reason: String,
    },
    /// Aborted by the client before commit.
    Aborted,
}

/// One settled frame, shareable across observers: the box tree is an
/// [`Arc`] handle and the struct itself is usually passed around inside
/// an `Arc` by hosts — fan-out is refcount bumps, never tree copies.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSnapshot {
    /// The display generation this frame was rendered under; two frames
    /// with equal generations are guaranteed identical.
    pub generation: u64,
    /// The plain-text live view (total: a faulting program yields its
    /// last good view, or a placeholder).
    pub view: String,
    /// The box tree behind the view, when the session has one.
    pub tree: Option<Arc<BoxNode>>,
    /// One-line banner describing the latest contained fault, if any.
    pub banner: Option<String>,
}

/// An answer from the session. Every command yields at least one
/// effect; state-changing commands end with a fresh
/// [`SessionEffect::Frame`] so observers never need a follow-up query.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEffect {
    /// A settled frame (view text, shared tree, fault banner).
    Frame(FrameSnapshot),
    /// A tap was delivered; `hit` says whether a handler ran.
    Tap {
        /// Whether a box with a handler was under the point.
        hit: bool,
    },
    /// The command could not be delivered (no such box, display stale,
    /// malformed snapshot…). The session is unchanged.
    Refused(String),
    /// An edit was applied; the UPDATE transition ran with this fix-up.
    EditApplied(FixupReport),
    /// An edit was rejected (parse/lower/type errors); the old program
    /// keeps running.
    EditRejected(Diagnostics),
    /// An edit type-checked but faulted as soon as it ran and was
    /// auto-reverted.
    EditQuarantined {
        /// The fault the new code produced before being reverted.
        fault: Box<Fault>,
        /// The fix-up report of the rolled-back update.
        report: FixupReport,
    },
    /// Outcome of an [`SessionCommand::Undo`] / [`SessionCommand::Redo`].
    Undo {
        /// `true` for redo, `false` for undo.
        redo: bool,
        /// What the history step did.
        outcome: UndoOutcome,
    },
    /// The current source text.
    Source(String),
    /// Frame-pipeline statistics for the current frame.
    Stats(FrameStats),
    /// A metrics snapshot (empty when the session has no registry
    /// attached — metrics are an opt-in, never an error).
    Metrics(MetricsSnapshot),
    /// Live-example probes, one per `example` item, in program order.
    /// An empty list means the program declares no examples.
    Examples(Vec<ExampleProbe>),
    /// A model snapshot in its text format.
    Snapshot(String),
    /// A snapshot was restored; entries that no longer type-check were
    /// skipped, with reasons.
    Restored(LoadReport),
    /// Progress of an edit transaction (see [`TxPhase`]).
    Tx {
        /// The transaction.
        tx: u64,
        /// Where it stands.
        phase: TxPhase,
    },
    /// Ranked candidate repairs answering a
    /// [`SessionCommand::ManipulateAt`] selection, best first. The
    /// offer is parked on the session; `ApplyRepair(n)` applies the
    /// `n`-th candidate.
    Repairs(Vec<CandidateRepair>),
    /// Backpressure: the host refused the command because the session's
    /// mailbox is at its high-water capacity. The typed sibling of
    /// [`SessionEffect::Refused`] — remote clients distinguish "try
    /// again later" (this) from "invalid request" (that) without parsing
    /// prose.
    Overloaded {
        /// The mailbox depth at refusal time (the configured capacity).
        depth: u64,
    },
}

impl LiveSession {
    /// Apply one command, returning its effects. **Total**: never
    /// panics, never errors — undeliverable commands come back as
    /// [`SessionEffect::Refused`], bad edits as
    /// [`SessionEffect::EditRejected`] / [`SessionEffect::EditQuarantined`].
    ///
    /// State-changing commands that succeed append a fresh
    /// [`SessionEffect::Frame`], so one round-trip always leaves the
    /// observer with the current view.
    pub fn apply(&mut self, command: SessionCommand) -> Vec<SessionEffect> {
        if let Some(metrics) = self.metrics() {
            metrics.record_command();
        }
        // While a fleet UPDATE awaits its promote/revert decision, every
        // client command is journaled so a revert can replay it against
        // the restored program.
        self.journal_for_fleet(&command);
        match command {
            SessionCommand::Frame => vec![SessionEffect::Frame(self.frame_snapshot())],
            SessionCommand::TapAt { x, y } => match self.tap_at(x, y) {
                Ok(hit) => vec![
                    SessionEffect::Tap { hit },
                    SessionEffect::Frame(self.frame_snapshot()),
                ],
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::TapPath(path) => match self.tap_path(&path) {
                Ok(()) => vec![
                    SessionEffect::Tap { hit: true },
                    SessionEffect::Frame(self.frame_snapshot()),
                ],
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::Back => match self.back() {
                Ok(()) => vec![SessionEffect::Frame(self.frame_snapshot())],
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::EditBox { path, text } => match self.edit_box(&path, &text) {
                Ok(()) => vec![SessionEffect::Frame(self.frame_snapshot())],
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::EditSource(src) => {
                let outcome = self.edit_source(&src);
                self.edit_outcome_effects(outcome)
            }
            SessionCommand::Undo => self.history_effects(false),
            SessionCommand::Redo => self.history_effects(true),
            SessionCommand::Source => vec![SessionEffect::Source(self.source().to_string())],
            SessionCommand::Stats => {
                // Settle and render once so the counters describe the
                // current frame, not a stale one.
                self.live_view();
                vec![SessionEffect::Stats(self.frame_stats())]
            }
            SessionCommand::Metrics => {
                // Settle (containing any pending faults) so the
                // snapshot reconciles with the session's history; no
                // render, so the query doesn't perturb frame metrics.
                self.refresh();
                vec![SessionEffect::Metrics(self.metrics_snapshot())]
            }
            SessionCommand::Examples => {
                // Settle and render first so the probes (and the cache
                // key's display generation) see the current model.
                self.live_view();
                vec![SessionEffect::Examples(self.examples())]
            }
            SessionCommand::Snapshot => match self.system().snapshot() {
                Ok(snapshot) => vec![SessionEffect::Snapshot(snapshot)],
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::Restore(snapshot) => match self.system_mut().restore(&snapshot) {
                Ok(report) => vec![
                    SessionEffect::Restored(report),
                    SessionEffect::Frame(self.frame_snapshot()),
                ],
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::TxOpen => {
                let tx = self.tx_open();
                vec![SessionEffect::Tx {
                    tx,
                    phase: TxPhase::Open { edits: 0 },
                }]
            }
            SessionCommand::TxEdit { tx, edits } => match self.tx_edit(tx, &edits) {
                Ok(edits) => vec![SessionEffect::Tx {
                    tx,
                    phase: TxPhase::Open { edits },
                }],
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::TxCommit(tx) => match self.tx_commit(tx) {
                Ok(EditOutcome::Applied(report)) => vec![
                    SessionEffect::EditApplied(report),
                    SessionEffect::Tx {
                        tx,
                        phase: TxPhase::Promoted {
                            updated: 1,
                            skipped: 0,
                        },
                    },
                    SessionEffect::Frame(self.frame_snapshot()),
                ],
                // The batch did not compile: the transaction stays open
                // for a fix, exactly like a rejected keystroke.
                Ok(EditOutcome::Rejected(diags)) => vec![SessionEffect::EditRejected(diags)],
                Ok(EditOutcome::Quarantined { fault, report }) => {
                    let reason = fault.to_string();
                    vec![
                        SessionEffect::EditQuarantined {
                            fault: Box::new(fault),
                            report,
                        },
                        SessionEffect::Tx {
                            tx,
                            phase: TxPhase::RolledBack {
                                reverted: 1,
                                reason,
                            },
                        },
                        SessionEffect::Frame(self.frame_snapshot()),
                    ]
                }
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::TxAbort(tx) => {
                if self.tx_abort(tx) {
                    vec![SessionEffect::Tx {
                        tx,
                        phase: TxPhase::Aborted,
                    }]
                } else {
                    vec![SessionEffect::Refused(format!(
                        "no open transaction tx#{tx}"
                    ))]
                }
            }
            SessionCommand::TxStatus(tx) => match self.tx_edits(tx) {
                Some(edits) => vec![SessionEffect::Tx {
                    tx,
                    phase: TxPhase::Open { edits },
                }],
                None => vec![SessionEffect::Refused(format!(
                    "no open transaction tx#{tx}"
                ))],
            },
            SessionCommand::ManipulateAt { path, leaf, value } => {
                match self.repairs_at(&path, leaf, &value) {
                    Ok(repairs) => vec![SessionEffect::Repairs(repairs)],
                    Err(e) => vec![SessionEffect::Refused(e.to_string())],
                }
            }
            SessionCommand::ApplyRepair(index) => match self.apply_repair(index) {
                Ok(outcome) => self.edit_outcome_effects(outcome),
                Err(e) => vec![SessionEffect::Refused(e.to_string())],
            },
            SessionCommand::AttrEdit { path, attr, value } => match Attr::from_name(&attr) {
                None => vec![SessionEffect::Refused(format!(
                    "unknown attribute `{attr}`"
                ))],
                Some(a) => match self.attribute_edit_at(&path, a, &value) {
                    Ok(outcome) => self.edit_outcome_effects(outcome),
                    Err(e) => vec![SessionEffect::Refused(e.to_string())],
                },
            },
        }
    }

    /// The standard effect sequence for an [`EditOutcome`], shared by
    /// every command that ends in a source edit (keystroke, repair,
    /// attribute manipulation).
    fn edit_outcome_effects(&mut self, outcome: EditOutcome) -> Vec<SessionEffect> {
        match outcome {
            EditOutcome::Applied(report) => vec![
                SessionEffect::EditApplied(report),
                SessionEffect::Frame(self.frame_snapshot()),
            ],
            // Rejected edits leave the display untouched: no frame.
            EditOutcome::Rejected(diags) => vec![SessionEffect::EditRejected(diags)],
            EditOutcome::Quarantined { fault, report } => vec![
                SessionEffect::EditQuarantined {
                    fault: Box::new(fault),
                    report,
                },
                SessionEffect::Frame(self.frame_snapshot()),
            ],
        }
    }

    /// Settle and capture the current frame as a shareable snapshot.
    pub fn frame_snapshot(&mut self) -> FrameSnapshot {
        let view = self.live_view();
        FrameSnapshot {
            generation: self.system().display_generation(),
            tree: self.display_tree(),
            banner: self.fault_banner(),
            view,
        }
    }

    fn history_effects(&mut self, redo: bool) -> Vec<SessionEffect> {
        let outcome = if redo { self.redo() } else { self.undo() };
        let applied = outcome.is_applied();
        let mut effects = vec![SessionEffect::Undo { redo, outcome }];
        if applied {
            effects.push(SessionEffect::Frame(self.frame_snapshot()));
        }
        effects
    }
}

/// Render frame-pipeline statistics in the standard multi-line form
/// shared by frontends (the repl's `:stats`, host inspection).
pub fn format_frame_stats(stats: &FrameStats) -> String {
    format!(
        "frame pipeline (last frame):\n\
         \x20 eval reuse:   {:>5.1}%  ({} hits, {} misses)\n\
         \x20 layout reuse: {:>5.1}%  ({} measured, {} reused)\n\
         \x20 repaint:      {:>5.1}%  ({} of {} cells, {})\n\
         \x20 stage time:   eval {} µs (compile {} + run {}), layout {} µs, paint {} µs\n\
         \x20 lifetime:     {} frames rendered, {} view-memo hits, {} vm cache hits",
        stats.eval_reuse() * 100.0,
        stats.eval_hits,
        stats.eval_misses,
        stats.layout_reuse() * 100.0,
        stats.nodes_measured,
        stats.nodes_reused,
        stats.repaint_fraction() * 100.0,
        stats.cells_repainted,
        stats.cells_total,
        if stats.partial {
            "partial"
        } else {
            "full frame"
        },
        stats.eval_us,
        stats.eval_compile_us,
        stats.eval_exec_us,
        stats.layout_us,
        stats.paint_us,
        stats.frames,
        stats.view_hits,
        stats.vm_cache_hits,
    )
}

/// Render a [`MetricsSnapshot`] in the standard human-readable form
/// shared by frontends (the repl's `:metrics`, the watch footer).
/// Deterministic: `BTreeMap` order, fixed quantiles. An empty snapshot
/// (no registry attached, or nothing recorded yet) says so.
pub fn format_metrics_snapshot(snapshot: &MetricsSnapshot) -> String {
    if snapshot.is_empty() {
        return "metrics: (none recorded — session has no registry attached)".to_string();
    }
    let mut out = String::from("metrics snapshot:");
    if !snapshot.counters.is_empty() {
        out.push_str("\n  counters:");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("\n    {name:<32} {value}"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("\n  gauges:");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("\n    {name:<32} {value}"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("\n  histograms:");
        for (name, h) in &snapshot.histograms {
            let quantile = |q: Option<u64>| match q {
                Some(v) => v.to_string(),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "\n    {name:<32} count={} p50={} p90={} p99={}",
                h.count,
                quantile(h.p50_us()),
                quantile(h.p90_us()),
                quantile(h.p99_us()),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

/// A malformed line in the command wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ProtocolParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProtocolParseError {}

fn push_block(out: &mut String, keyword: &str, text: &str) {
    out.push_str(keyword);
    out.push(' ');
    out.push_str(&text.len().to_string());
    out.push('\n');
    out.push_str(text);
    out.push('\n');
}

impl SessionCommand {
    /// Serialize to the line-oriented wire format (same family as the
    /// `#alive-trace v1` format: one line per command, multi-line
    /// payloads as length-prefixed blocks).
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        match self {
            SessionCommand::Frame => out.push_str("frame\n"),
            SessionCommand::TapAt { x, y } => {
                out.push_str(&format!("tap-at {x} {y}\n"));
            }
            SessionCommand::TapPath(path) => {
                out.push_str("tap");
                for p in path {
                    out.push_str(&format!(" {p}"));
                }
                out.push('\n');
            }
            SessionCommand::Back => out.push_str("back\n"),
            SessionCommand::EditBox { path, text } => {
                out.push_str("editbox");
                for p in path {
                    out.push_str(&format!(" {p}"));
                }
                out.push_str(" -- ");
                out.push_str(&escape(text));
                out.push('\n');
            }
            SessionCommand::EditSource(src) => push_block(&mut out, "editsource", src),
            SessionCommand::Undo => out.push_str("undo\n"),
            SessionCommand::Redo => out.push_str("redo\n"),
            SessionCommand::Source => out.push_str("source\n"),
            SessionCommand::Stats => out.push_str("stats\n"),
            SessionCommand::Metrics => out.push_str("metrics\n"),
            SessionCommand::Examples => out.push_str("examples\n"),
            SessionCommand::Snapshot => out.push_str("snapshot\n"),
            SessionCommand::Restore(snapshot) => push_block(&mut out, "restore", snapshot),
            SessionCommand::TxOpen => out.push_str("txopen\n"),
            SessionCommand::TxEdit { tx, edits } => {
                // Header line carries the edit count; each edit follows
                // on its own line (`start end -- escaped-replacement`).
                out.push_str(&format!("txedit {tx} {}\n", edits.len()));
                for edit in edits {
                    out.push_str(&format!(
                        "{} {} -- {}\n",
                        edit.span.start,
                        edit.span.end,
                        escape(&edit.replacement)
                    ));
                }
            }
            SessionCommand::TxCommit(tx) => out.push_str(&format!("txcommit {tx}\n")),
            SessionCommand::TxAbort(tx) => out.push_str(&format!("txabort {tx}\n")),
            SessionCommand::TxStatus(tx) => out.push_str(&format!("txstatus {tx}\n")),
            SessionCommand::ManipulateAt { path, leaf, value } => {
                out.push_str("poke");
                for p in path {
                    out.push_str(&format!(" {p}"));
                }
                out.push_str(&format!(" {leaf} -- "));
                out.push_str(&escape(value));
                out.push('\n');
            }
            SessionCommand::ApplyRepair(n) => out.push_str(&format!("repair {n}\n")),
            SessionCommand::AttrEdit { path, attr, value } => {
                out.push_str("attredit");
                for p in path {
                    out.push_str(&format!(" {p}"));
                }
                out.push_str(&format!(" {attr} -- "));
                out.push_str(&escape(value));
                out.push('\n');
            }
        }
        out
    }
}

/// Parse a sequence of commands from the wire format. Blank lines and
/// `#` comment lines between commands are ignored.
///
/// # Errors
///
/// [`ProtocolParseError`] pointing at the malformed line.
pub fn parse_commands(text: &str) -> Result<Vec<SessionCommand>, ProtocolParseError> {
    let mut commands = Vec::new();
    let mut rest = text;
    let mut line_no = 0usize;
    while !rest.is_empty() {
        let (line, after) = match rest.split_once('\n') {
            Some((l, a)) => (l, a),
            None => (rest, ""),
        };
        line_no += 1;
        let err = |message: String| ProtocolParseError {
            line: line_no,
            message,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            rest = after;
            continue;
        }
        let (keyword, args) = match trimmed.split_once(' ') {
            Some((k, a)) => (k, a.trim()),
            None => (trimmed, ""),
        };
        // Length-prefixed block commands consume payload bytes from
        // `after` directly (the payload is raw, not line-structured).
        let take_block = |after: &str| -> Result<(String, usize), ProtocolParseError> {
            let len: usize = args
                .parse()
                .map_err(|_| err(format!("bad length `{args}`")))?;
            if after.len() < len {
                return Err(err(format!(
                    "payload truncated: want {len} bytes, have {}",
                    after.len()
                )));
            }
            if !after.is_char_boundary(len) {
                return Err(err(format!("length {len} splits a UTF-8 character")));
            }
            Ok((after[..len].to_string(), len))
        };
        let mut consumed_payload = 0usize;
        let command = match keyword {
            "frame" => SessionCommand::Frame,
            "tap-at" => {
                let mut parts = args.split_whitespace();
                let parse_coord = |part: Option<&str>| {
                    part.and_then(|p| p.parse::<i32>().ok())
                        .ok_or_else(|| err(format!("bad coordinates `{args}`")))
                };
                let x = parse_coord(parts.next())?;
                let y = parse_coord(parts.next())?;
                if parts.next().is_some() {
                    return Err(err(format!("trailing arguments in `{args}`")));
                }
                SessionCommand::TapAt { x, y }
            }
            "tap" => SessionCommand::TapPath(parse_usize_path(args).map_err(&err)?),
            "back" => SessionCommand::Back,
            "editbox" => {
                let (path_part, text) = args
                    .split_once(" -- ")
                    .ok_or_else(|| err("editbox needs ` -- ` separator".to_string()))?;
                SessionCommand::EditBox {
                    path: parse_usize_path(path_part).map_err(&err)?,
                    text: unescape(text),
                }
            }
            "editsource" => {
                let (payload, len) = take_block(after)?;
                consumed_payload = len;
                SessionCommand::EditSource(payload)
            }
            "undo" => SessionCommand::Undo,
            "redo" => SessionCommand::Redo,
            "source" => SessionCommand::Source,
            "stats" => SessionCommand::Stats,
            "metrics" => SessionCommand::Metrics,
            "examples" => SessionCommand::Examples,
            "snapshot" => SessionCommand::Snapshot,
            "restore" => {
                let (payload, len) = take_block(after)?;
                consumed_payload = len;
                SessionCommand::Restore(payload)
            }
            "txopen" => SessionCommand::TxOpen,
            "txedit" => {
                let mut parts = args.split_whitespace();
                let mut next_u64 = |what: &str| {
                    parts
                        .next()
                        .and_then(|p| p.parse::<u64>().ok())
                        .ok_or_else(|| err(format!("bad {what} in `{args}`")))
                };
                let tx = next_u64("transaction id")?;
                let count = usize::try_from(next_u64("edit count")?)
                    .map_err(|_| err(format!("bad edit count in `{args}`")))?;
                let mut edits = Vec::with_capacity(count.min(1024));
                let mut body = after;
                let mut consumed = 0usize;
                for _ in 0..count {
                    let (edit_line, rest_body) = body.split_once('\n').ok_or_else(|| {
                        err(format!("txedit payload truncated: want {count} edits"))
                    })?;
                    let (span_part, text) = edit_line.split_once(" -- ").ok_or_else(|| {
                        err(format!("txedit edit line needs ` -- `: `{edit_line}`"))
                    })?;
                    let mut span_parts = span_part.split_whitespace();
                    let mut coord = |what: &str| {
                        span_parts
                            .next()
                            .and_then(|p| p.parse::<u32>().ok())
                            .ok_or_else(|| err(format!("bad {what} in `{edit_line}`")))
                    };
                    let start = coord("span start")?;
                    let end = coord("span end")?;
                    edits.push(TextEdit {
                        span: Span::new(start, end),
                        replacement: unescape(text),
                    });
                    consumed += edit_line.len() + 1;
                    body = rest_body;
                }
                // Leave the final newline for the generic strip below.
                consumed_payload = consumed.saturating_sub(usize::from(count > 0));
                SessionCommand::TxEdit { tx, edits }
            }
            "poke" => {
                // `poke <path...> <leaf> -- <value>`: the last number
                // before the separator is the leaf ordinal.
                let (head, value) = args
                    .split_once(" -- ")
                    .ok_or_else(|| err("poke needs ` -- ` separator".to_string()))?;
                let mut nums = parse_usize_path(head).map_err(&err)?;
                let leaf = nums
                    .pop()
                    .ok_or_else(|| err("poke needs a leaf ordinal".to_string()))?;
                SessionCommand::ManipulateAt {
                    path: nums,
                    leaf,
                    value: unescape(value),
                }
            }
            "repair" => {
                let n: usize = args
                    .parse()
                    .map_err(|_| err(format!("bad repair index `{args}`")))?;
                SessionCommand::ApplyRepair(n)
            }
            "attredit" => {
                // `attredit <path...> <attr> -- <value>`: the last token
                // before the separator is the attribute name.
                let (head, value) = args
                    .split_once(" -- ")
                    .ok_or_else(|| err("attredit needs ` -- ` separator".to_string()))?;
                let mut tokens: Vec<&str> = head.split_whitespace().collect();
                let attr = tokens
                    .pop()
                    .ok_or_else(|| err("attredit needs an attribute name".to_string()))?;
                let path = parse_usize_path(&tokens.join(" ")).map_err(&err)?;
                SessionCommand::AttrEdit {
                    path,
                    attr: attr.to_string(),
                    value: unescape(value),
                }
            }
            "txcommit" | "txabort" | "txstatus" => {
                let tx: u64 = args
                    .parse()
                    .map_err(|_| err(format!("bad transaction id `{args}`")))?;
                match keyword {
                    "txcommit" => SessionCommand::TxCommit(tx),
                    "txabort" => SessionCommand::TxAbort(tx),
                    _ => SessionCommand::TxStatus(tx),
                }
            }
            other => return Err(err(format!("unknown command `{other}`"))),
        };
        commands.push(command);
        rest = &after[consumed_payload..];
        // A block payload is followed by one newline of its own.
        if consumed_payload > 0 {
            rest = rest.strip_prefix('\n').unwrap_or(rest);
            // Count the payload's lines so later errors still point at
            // the right place.
            line_no += commands
                .last()
                .map(|c| match c {
                    SessionCommand::EditSource(s) | SessionCommand::Restore(s) => {
                        s.matches('\n').count() + 1
                    }
                    SessionCommand::TxEdit { edits, .. } => edits.len(),
                    _ => 0,
                })
                .unwrap_or(0);
        }
    }
    Ok(commands)
}

fn parse_usize_path(args: &str) -> Result<Vec<usize>, String> {
    args.split_whitespace()
        .map(|p| p.parse().map_err(|_| format!("bad path element `{p}`")))
        .collect()
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl SessionEffect {
    /// Serialize to a line-oriented text form — the host→observer half
    /// of the wire. One-way by design: effects carry rendered payloads
    /// (views, banners, reports), so observers need no session of their
    /// own to display them.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        match self {
            SessionEffect::Frame(frame) => {
                out.push_str(&format!("frame generation={}", frame.generation));
                if frame.banner.is_some() {
                    out.push_str(" degraded");
                }
                out.push('\n');
                if let Some(banner) = &frame.banner {
                    out.push_str(&format!("banner {}\n", banner.replace('\n', " ")));
                }
                push_block(&mut out, "view", &frame.view);
            }
            SessionEffect::Tap { hit } => {
                out.push_str(if *hit { "tap hit\n" } else { "tap miss\n" });
            }
            SessionEffect::Refused(why) => {
                out.push_str(&format!("refused {}\n", why.replace('\n', " ")));
            }
            SessionEffect::EditApplied(report) => {
                out.push_str("edit applied");
                if report.dropped_anything() {
                    out.push_str(&format!(
                        " dropped-globals={} dropped-pages={}",
                        report.dropped_globals.len(),
                        report.dropped_pages.len()
                    ));
                }
                out.push('\n');
            }
            SessionEffect::EditRejected(diags) => {
                out.push_str(&format!("edit rejected\n{diags}"));
            }
            SessionEffect::EditQuarantined { fault, .. } => {
                out.push_str(&format!("edit quarantined {fault}\n"));
            }
            SessionEffect::Undo { redo, outcome } => {
                let op = if *redo { "redo" } else { "undo" };
                match outcome {
                    UndoOutcome::Applied => out.push_str(&format!("{op} applied\n")),
                    UndoOutcome::NothingToUndo => out.push_str(&format!("{op} empty\n")),
                    UndoOutcome::Quarantined(_) => {
                        out.push_str(&format!("{op} quarantined\n"));
                    }
                }
            }
            SessionEffect::Source(src) => push_block(&mut out, "sourcetext", src),
            SessionEffect::Stats(stats) => {
                out.push_str(&format_frame_stats(stats));
                out.push('\n');
            }
            SessionEffect::Metrics(snapshot) => {
                // The payload is the snapshot's own wire form, carried
                // as a length-prefixed block like views and sources —
                // `MetricsSnapshot::parse_wire` recovers it losslessly.
                push_block(&mut out, "metrics", &snapshot.to_wire());
            }
            SessionEffect::Examples(probes) => {
                out.push_str(&format!("examples count={}\n", probes.len()));
                for probe in probes {
                    out.push_str(&format!("example {}\n", escape(&probe.render_line())));
                }
            }
            SessionEffect::Snapshot(snapshot) => push_block(&mut out, "snapshot", snapshot),
            SessionEffect::Restored(report) => {
                out.push_str(&format!("restored skipped={}\n", report.skipped.len()));
            }
            SessionEffect::Tx { tx, phase } => match phase {
                TxPhase::Open { edits } => {
                    out.push_str(&format!("tx {tx} open edits={edits}\n"));
                }
                TxPhase::Canary { canary, fleet } => {
                    out.push_str(&format!("tx {tx} canary {canary}/{fleet}\n"));
                }
                TxPhase::Promoted { updated, skipped } => {
                    out.push_str(&format!(
                        "tx {tx} promoted updated={updated} skipped={skipped}\n"
                    ));
                }
                TxPhase::RolledBack { reverted, reason } => {
                    out.push_str(&format!(
                        "tx {tx} rolledback reverted={reverted} -- {}\n",
                        reason.replace('\n', " ")
                    ));
                }
                TxPhase::Aborted => out.push_str(&format!("tx {tx} aborted\n")),
            },
            SessionEffect::Repairs(repairs) => {
                out.push_str(&format!("repairs count={}\n", repairs.len()));
                for (i, r) in repairs.iter().enumerate() {
                    out.push_str(&format!(
                        "repair {i} rank={} {}..{} -- {} -- {}\n",
                        r.rank,
                        r.edit.span.start,
                        r.edit.span.end,
                        escape(&r.edit.replacement),
                        r.description.replace('\n', " ")
                    ));
                }
            }
            SessionEffect::Overloaded { depth } => {
                out.push_str(&format!("overloaded depth={depth}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = r#"
global count : number = 0
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 10; }
        }
    }
}
"#;

    #[test]
    fn apply_is_total_over_every_command() {
        let mut s = LiveSession::new(APP).expect("starts");
        let commands = vec![
            SessionCommand::Frame,
            SessionCommand::TapPath(vec![0]),
            SessionCommand::TapPath(vec![9, 9]), // no such box
            SessionCommand::TapAt { x: 1, y: 0 },
            SessionCommand::TapAt { x: 500, y: 500 },
            SessionCommand::Back, // root page: refused
            SessionCommand::EditBox {
                path: vec![0],
                text: "x".to_string(),
            }, // label: no onedit — refused
            SessionCommand::EditSource(APP.replace("count is", "n =")),
            SessionCommand::EditSource("not a program".to_string()),
            SessionCommand::Undo,
            SessionCommand::Undo, // history exhausted
            SessionCommand::Redo,
            SessionCommand::Source,
            SessionCommand::Stats,
            SessionCommand::Metrics,
            SessionCommand::Examples,
            SessionCommand::Snapshot,
            SessionCommand::Restore("#alive-store v1\n".to_string()),
            SessionCommand::Restore("garbage".to_string()),
            SessionCommand::TxOpen,
            SessionCommand::TxEdit {
                tx: 1,
                edits: vec![TextEdit::insert(0, "# staged\n")],
            },
            SessionCommand::TxEdit {
                tx: 99,
                edits: vec![],
            }, // unknown tx
            SessionCommand::TxStatus(1),
            SessionCommand::TxCommit(1),
            SessionCommand::TxCommit(1), // already committed
            SessionCommand::TxAbort(7),  // unknown tx
            SessionCommand::ManipulateAt {
                path: vec![0],
                leaf: 0,
                value: "99".to_string(),
            },
            SessionCommand::ManipulateAt {
                path: vec![9, 9],
                leaf: 0,
                value: "99".to_string(),
            }, // no such box
            SessionCommand::ApplyRepair(99), // out of range
            SessionCommand::ApplyRepair(0),
            SessionCommand::ApplyRepair(0), // offer consumed or absent
            SessionCommand::AttrEdit {
                path: vec![0],
                attr: "margin".to_string(),
                value: "2".to_string(),
            },
            SessionCommand::AttrEdit {
                path: vec![0],
                attr: "wobble".to_string(),
                value: "2".to_string(),
            }, // unknown attribute
        ];
        for command in commands {
            let effects = s.apply(command.clone());
            assert!(!effects.is_empty(), "no effects for {command:?}");
        }
    }

    #[test]
    fn frame_effect_matches_direct_calls() {
        let mut s = LiveSession::new(APP).expect("starts");
        let direct_view = s.live_view();
        let effects = s.apply(SessionCommand::Frame);
        let [SessionEffect::Frame(frame)] = effects.as_slice() else {
            panic!("expected one frame effect, got {effects:?}");
        };
        assert_eq!(frame.view, direct_view);
        assert!(frame.banner.is_none());
        let tree = frame.tree.as_ref().expect("renderable");
        assert!(Arc::ptr_eq(tree, &s.display_tree().expect("tree")));
    }

    #[test]
    fn tap_effects_end_with_the_new_frame() {
        let mut s = LiveSession::new(APP).expect("starts");
        let effects = s.apply(SessionCommand::TapPath(vec![0]));
        assert!(matches!(effects[0], SessionEffect::Tap { hit: true }));
        let SessionEffect::Frame(frame) = &effects[1] else {
            panic!("expected frame, got {:?}", effects[1]);
        };
        assert_eq!(frame.view, "count is 11\n");
    }

    #[test]
    fn refused_commands_leave_the_session_unchanged() {
        let mut s = LiveSession::new(APP).expect("starts");
        let before = s.live_view();
        let generation = s.system().display_generation();
        for effects in [
            s.apply(SessionCommand::TapPath(vec![42])),
            s.apply(SessionCommand::Back),
            s.apply(SessionCommand::EditSource("nope".to_string())),
        ] {
            assert!(matches!(
                effects[0],
                SessionEffect::Refused(_) | SessionEffect::EditRejected(_)
            ));
            assert_eq!(effects.len(), 1, "no frame on refusal: {effects:?}");
        }
        assert_eq!(s.live_view(), before);
        assert_eq!(s.system().display_generation(), generation);
    }

    #[test]
    fn undo_roundtrip_through_effects() {
        let mut s = LiveSession::new(APP).expect("starts");
        // Nothing to undo yet.
        let effects = s.apply(SessionCommand::Undo);
        assert_eq!(
            effects,
            vec![SessionEffect::Undo {
                redo: false,
                outcome: UndoOutcome::NothingToUndo
            }]
        );
        // Apply an edit, then undo it through the protocol.
        let edited = APP.replace("count is", "n =");
        let effects = s.apply(SessionCommand::EditSource(edited));
        assert!(matches!(effects[0], SessionEffect::EditApplied(_)));
        let effects = s.apply(SessionCommand::Undo);
        assert!(matches!(
            effects[0],
            SessionEffect::Undo {
                redo: false,
                outcome: UndoOutcome::Applied
            }
        ));
        let SessionEffect::Frame(frame) = &effects[1] else {
            panic!("undo that applied must re-frame");
        };
        assert!(frame.view.starts_with("count is"));
    }

    #[test]
    fn command_wire_format_round_trips() {
        let commands = vec![
            SessionCommand::Frame,
            SessionCommand::TapAt { x: 3, y: 7 },
            SessionCommand::TapPath(vec![1, 0, 2]),
            SessionCommand::Back,
            SessionCommand::EditBox {
                path: vec![2, 1],
                text: "two\nlines \\ with a backslash".to_string(),
            },
            SessionCommand::EditSource("page start() {\n    render { }\n}\n".to_string()),
            SessionCommand::Undo,
            SessionCommand::Redo,
            SessionCommand::Source,
            SessionCommand::Stats,
            SessionCommand::Metrics,
            SessionCommand::Examples,
            SessionCommand::Snapshot,
            SessionCommand::Restore("#alive-store v1\nnum count 3\n".to_string()),
            SessionCommand::TxOpen,
            SessionCommand::TxEdit {
                tx: 3,
                edits: vec![
                    TextEdit::replace(Span::new(4, 9), "two\nlines \\ and a backslash"),
                    TextEdit::insert(0, "lead"),
                    TextEdit::delete(Span::new(12, 14)),
                ],
            },
            SessionCommand::TxEdit {
                tx: 4,
                edits: vec![],
            },
            SessionCommand::TxStatus(3),
            SessionCommand::TxCommit(3),
            SessionCommand::TxAbort(4),
            SessionCommand::ManipulateAt {
                path: vec![1, 0],
                leaf: 2,
                value: "two\nlines".to_string(),
            },
            SessionCommand::ManipulateAt {
                path: vec![],
                leaf: 0,
                value: "root leaf".to_string(),
            },
            SessionCommand::ApplyRepair(1),
            SessionCommand::AttrEdit {
                path: vec![0, 2],
                attr: "margin".to_string(),
                value: "base + 2".to_string(),
            },
            SessionCommand::AttrEdit {
                path: vec![],
                attr: "background".to_string(),
                value: "colors.light_blue".to_string(),
            },
        ];
        let wire: String = commands.iter().map(SessionCommand::serialize).collect();
        let parsed = parse_commands(&wire).expect("parses");
        assert_eq!(parsed, commands);
    }

    #[test]
    fn parse_reports_malformed_lines() {
        assert!(parse_commands("warble\n").is_err());
        assert!(parse_commands("tap-at 1\n").is_err());
        assert!(parse_commands("tap one two\n").is_err());
        assert!(parse_commands("editsource 999\nshort\n").is_err());
        assert!(parse_commands("editbox 0 no separator\n").is_err());
        assert!(parse_commands("txedit nope 1\n").is_err());
        assert!(parse_commands("txedit 1 2\n0 1 -- x\n").is_err()); // truncated
        assert!(parse_commands("txedit 1 1\nno separator\n").is_err());
        assert!(parse_commands("txcommit many\n").is_err());
        assert!(parse_commands("poke 0 1\n").is_err()); // no separator
        assert!(parse_commands("poke a 0 -- x\n").is_err()); // bad path
        assert!(parse_commands("poke -- x\n").is_err()); // no leaf ordinal
        assert!(parse_commands("repair many\n").is_err());
        assert!(parse_commands("attredit 0 margin 4\n").is_err()); // no separator
        assert!(parse_commands("attredit q margin -- 4\n").is_err()); // bad path
                                                                      // Comments and blank lines are fine.
        let parsed = parse_commands("# a comment\n\nframe\n").expect("parses");
        assert_eq!(parsed, vec![SessionCommand::Frame]);
    }

    #[test]
    fn effects_serialize_without_panicking() {
        let mut s = LiveSession::new(APP).expect("starts");
        for command in [
            SessionCommand::Frame,
            SessionCommand::TapPath(vec![0]),
            SessionCommand::Back,
            SessionCommand::EditSource("bad".to_string()),
            SessionCommand::Undo,
            SessionCommand::Stats,
            SessionCommand::Examples,
            SessionCommand::Snapshot,
            SessionCommand::TxOpen,
            SessionCommand::TxStatus(1),
            SessionCommand::TxAbort(1),
            SessionCommand::ManipulateAt {
                path: vec![0],
                leaf: 0,
                value: "n = 1".to_string(),
            },
            SessionCommand::ApplyRepair(99),
            SessionCommand::AttrEdit {
                path: vec![0],
                attr: "margin".to_string(),
                value: "3".to_string(),
            },
        ] {
            for effect in s.apply(command) {
                assert!(!effect.serialize().is_empty());
            }
        }
        // Repairs have a stable line-per-candidate wire form.
        let wire = SessionEffect::Repairs(vec![CandidateRepair {
            rank: 1,
            edit: TextEdit::replace(Span::new(4, 9), "\"a\nb\""),
            description: "change the string".to_string(),
        }])
        .serialize();
        assert_eq!(
            wire,
            "repairs count=1\nrepair 0 rank=1 4..9 -- \"a\\nb\" -- change the string\n"
        );
        // The typed backpressure and fleet-phase effects have stable
        // one-line wire forms.
        assert_eq!(
            SessionEffect::Overloaded { depth: 1024 }.serialize(),
            "overloaded depth=1024\n"
        );
        assert_eq!(
            SessionEffect::Tx {
                tx: 5,
                phase: TxPhase::Canary {
                    canary: 10,
                    fleet: 100
                }
            }
            .serialize(),
            "tx 5 canary 10/100\n"
        );
        assert_eq!(
            SessionEffect::Tx {
                tx: 5,
                phase: TxPhase::RolledBack {
                    reverted: 10,
                    reason: "fault\nspike".to_string()
                }
            }
            .serialize(),
            "tx 5 rolledback reverted=10 -- fault spike\n"
        );
    }

    #[test]
    fn examples_probe_the_live_model_through_the_protocol() {
        let app = format!(
            "{APP}example count = count\nexample doubled = count * 2 expect count + count\n"
        );
        let mut s = LiveSession::new(&app).expect("starts");
        // init ran: count = 1. Probes see the live model, not the
        // initializer.
        let effects = s.apply(SessionCommand::Examples);
        let [SessionEffect::Examples(probes)] = effects.as_slice() else {
            panic!("expected examples, got {effects:?}");
        };
        assert_eq!(probes.len(), 2);
        assert_eq!(probes[0].render_line(), "count = 1");
        assert_eq!(probes[1].render_line(), "doubled = 2 ok");
        let wire = SessionEffect::Examples(probes.clone()).serialize();
        assert_eq!(
            wire,
            "examples count=2\nexample count = 1\nexample doubled = 2 ok\n"
        );
        // A tap mutates the model; the probes follow continuously.
        s.apply(SessionCommand::TapPath(vec![0])); // count = 11
        let effects = s.apply(SessionCommand::Examples);
        let [SessionEffect::Examples(probes)] = effects.as_slice() else {
            panic!("expected examples, got {effects:?}");
        };
        assert_eq!(probes[0].render_line(), "count = 11");
        assert_eq!(probes[1].render_line(), "doubled = 22 ok");
        // A program with no examples answers with an empty (but
        // present) effect, never a refusal.
        let mut bare = LiveSession::new(APP).expect("starts");
        let effects = bare.apply(SessionCommand::Examples);
        assert_eq!(effects, vec![SessionEffect::Examples(Vec::new())]);
    }

    #[test]
    fn manipulate_then_repair_through_the_protocol() {
        let mut s = LiveSession::new(APP).expect("starts");
        // count = 1 after init; the label renders "count is 1". Select
        // it and ask for "n = 1".
        let effects = s.apply(SessionCommand::ManipulateAt {
            path: vec![0],
            leaf: 0,
            value: "n = 1".to_string(),
        });
        let [SessionEffect::Repairs(repairs)] = effects.as_slice() else {
            panic!("expected repairs, got {effects:?}");
        };
        // Best first: rank 1 rewrites the string-literal head of the
        // concatenation; rank 2 is the whole-expression fallback.
        assert!(repairs.len() >= 2, "{repairs:?}");
        assert_eq!(repairs[0].rank, 1);
        assert!(
            repairs[0].description.contains("change the string"),
            "{:?}",
            repairs[0]
        );
        assert_eq!(repairs.last().expect("fallback").rank, 2);
        let effects = s.apply(SessionCommand::ApplyRepair(0));
        assert!(matches!(effects[0], SessionEffect::EditApplied(_)));
        let SessionEffect::Frame(frame) = &effects[1] else {
            panic!("applied repair must re-frame");
        };
        // The repair re-renders to exactly the requested value, and the
        // change is enshrined in code.
        assert_eq!(frame.view, "n = 1\n");
        assert!(s.source().contains(r#""n = " ++ count"#), "{}", s.source());
        // The offer was consumed with the applied edit.
        let effects = s.apply(SessionCommand::ApplyRepair(0));
        assert!(matches!(effects[0], SessionEffect::Refused(_)));
    }

    #[test]
    fn stale_repair_offers_are_refused_after_a_source_edit() {
        let mut s = LiveSession::new(APP).expect("starts");
        let effects = s.apply(SessionCommand::ManipulateAt {
            path: vec![0],
            leaf: 0,
            value: "n = 1".to_string(),
        });
        assert!(matches!(effects[0], SessionEffect::Repairs(_)));
        // The source moves on between selection and application: the
        // parked candidates address dead spans and must not fire.
        let edited = s.source().replace("count is", "total is");
        s.apply(SessionCommand::EditSource(edited));
        let effects = s.apply(SessionCommand::ApplyRepair(0));
        assert!(matches!(effects[0], SessionEffect::Refused(_)));
        assert_eq!(s.live_view(), "total is 1\n");
        // A fresh selection against the new source works again.
        let effects = s.apply(SessionCommand::ManipulateAt {
            path: vec![0],
            leaf: 0,
            value: "n = 1".to_string(),
        });
        assert!(matches!(effects[0], SessionEffect::Repairs(_)));
    }

    #[test]
    fn attredit_through_the_protocol_survives_source_drift() {
        let mut s = LiveSession::new(APP).expect("starts");
        // Shift every span first (a comment up top), then manipulate by
        // path: the command resolves against the *current* source.
        let edited = format!("// drifted\n{}", s.source());
        s.apply(SessionCommand::EditSource(edited));
        let effects = s.apply(SessionCommand::AttrEdit {
            path: vec![0],
            attr: "margin".to_string(),
            value: "2".to_string(),
        });
        assert!(matches!(effects[0], SessionEffect::EditApplied(_)));
        let SessionEffect::Frame(frame) = &effects[1] else {
            panic!("applied attredit must re-frame");
        };
        // Margin 2 indents the label (and pads above it).
        assert!(frame.view.ends_with("  count is 1\n"), "{:?}", frame.view);
        assert!(s.source().contains("box.margin := 2;"));
    }

    #[test]
    fn solo_transactions_commit_atomically() {
        let mut s = LiveSession::new(APP).expect("starts");
        s.apply(SessionCommand::TapPath(vec![0])); // count = 11
        let effects = s.apply(SessionCommand::TxOpen);
        let [SessionEffect::Tx {
            tx,
            phase: TxPhase::Open { edits: 0 },
        }] = effects.as_slice()
        else {
            panic!("expected an open effect, got {effects:?}");
        };
        let tx = *tx;
        let at = APP.find("count is").expect("label") as u32;
        let effects = s.apply(SessionCommand::TxEdit {
            tx,
            edits: vec![TextEdit::replace(Span::new(at, at + 8), "n =")],
        });
        assert!(matches!(
            effects[0],
            SessionEffect::Tx {
                phase: TxPhase::Open { edits: 1 },
                ..
            }
        ));
        // Staging does not touch the running program.
        assert_eq!(s.live_view(), "count is 11\n");
        let effects = s.apply(SessionCommand::TxCommit(tx));
        assert!(matches!(effects[0], SessionEffect::EditApplied(_)));
        assert!(matches!(
            effects[1],
            SessionEffect::Tx {
                phase: TxPhase::Promoted {
                    updated: 1,
                    skipped: 0
                },
                ..
            }
        ));
        assert_eq!(s.live_view(), "n = 11\n");
        // The transaction closed with its commit.
        let effects = s.apply(SessionCommand::TxCommit(tx));
        assert!(matches!(effects[0], SessionEffect::Refused(_)));
    }

    #[test]
    fn solo_transaction_commit_that_faults_rolls_back() {
        let mut s = LiveSession::new(APP).expect("starts");
        s.apply(SessionCommand::TapPath(vec![0])); // count = 11
        let effects = s.apply(SessionCommand::TxOpen);
        let [SessionEffect::Tx { tx, .. }] = effects.as_slice() else {
            panic!("expected an open effect");
        };
        let tx = *tx;
        let stmt = "post \"count is \" ++ count;";
        let at = APP.find(stmt).expect("render stmt") as u32;
        let effects = s.apply(SessionCommand::TxEdit {
            tx,
            edits: vec![TextEdit::replace(
                Span::new(at, at + stmt.len() as u32),
                "while true { count; } post \"never\";",
            )],
        });
        assert!(matches!(effects[0], SessionEffect::Tx { .. }));
        let effects = s.apply(SessionCommand::TxCommit(tx));
        assert!(matches!(effects[0], SessionEffect::EditQuarantined { .. }));
        assert!(matches!(
            effects[1],
            SessionEffect::Tx {
                phase: TxPhase::RolledBack { reverted: 1, .. },
                ..
            }
        ));
        // Byte-identical to the pre-transaction state, model intact.
        assert_eq!(s.live_view(), "count is 11\n");
        assert!(s.source().contains(stmt));
    }

    #[test]
    fn rejected_commit_keeps_the_transaction_open() {
        let mut s = LiveSession::new(APP).expect("starts");
        let effects = s.apply(SessionCommand::TxOpen);
        let [SessionEffect::Tx { tx, .. }] = effects.as_slice() else {
            panic!("expected an open effect");
        };
        let tx = *tx;
        // Stage a batch that will not compile.
        let end = APP.len() as u32;
        s.apply(SessionCommand::TxEdit {
            tx,
            edits: vec![TextEdit::replace(Span::new(0, end), "not a program")],
        });
        let effects = s.apply(SessionCommand::TxCommit(tx));
        assert!(matches!(effects[0], SessionEffect::EditRejected(_)));
        // Still open: a fixing batch can be staged and committed.
        let effects = s.apply(SessionCommand::TxStatus(tx));
        assert!(matches!(
            effects[0],
            SessionEffect::Tx {
                phase: TxPhase::Open { edits: 1 },
                ..
            }
        ));
        s.apply(SessionCommand::TxEdit {
            tx,
            edits: vec![TextEdit::replace(
                Span::new(0, "not a program".len() as u32),
                APP.replace("count is", "n ="),
            )],
        });
        let effects = s.apply(SessionCommand::TxCommit(tx));
        assert!(matches!(effects[0], SessionEffect::EditApplied(_)));
        assert_eq!(s.live_view(), "n = 1\n");
    }
}
