//! Session-level metrics: pre-resolved [`alive_obs`] handles for the
//! live loop around one [`crate::LiveSession`].
//!
//! Where [`alive_core::metrics::SystemMetrics`] counts what the
//! transition machine does, [`SessionMetrics`] measures the developer
//! experience on top of it: edit outcomes, undo/redo outcomes, and the
//! frame pipeline's stage timings and reuse ratios — fed from
//! [`crate::pipeline::FrameStats`] into latency histograms each time a
//! frame is actually rendered.
//!
//! Both metric bundles resolve from the *same* [`Registry`], so one
//! [`alive_obs::MetricsSnapshot`] describes the whole session — that is
//! what [`crate::SessionCommand::Metrics`] returns over the wire.

use alive_obs::{Clock, Counter, Histogram, Registry};
use std::sync::Arc;

use crate::pipeline::FrameStats;
use crate::session::{EditOutcome, UndoOutcome};

/// Metric names recorded by [`crate::LiveSession`]. Public so tests and
/// dashboards reference the same strings the session writes.
pub mod names {
    /// Edits accepted (and kept) as UPDATE transitions.
    pub const EDITS_APPLIED: &str = "session.edits.applied";
    /// Edits rejected by parse/lower/type checks.
    pub const EDITS_REJECTED: &str = "session.edits.rejected";
    /// Edits that type-checked, faulted, and were auto-reverted.
    pub const EDITS_QUARANTINED: &str = "session.edits.quarantined";
    /// Undo/redo steps that applied.
    pub const HISTORY_APPLIED: &str = "session.history.applied";
    /// Undo/redo steps that were quarantined (faulted, reverted).
    pub const HISTORY_QUARANTINED: &str = "session.history.quarantined";
    /// Undo/redo requests with an empty history stack.
    pub const HISTORY_NOOP: &str = "session.history.noop";
    /// Frames actually rendered by the pipeline (view-memo misses).
    pub const FRAMES_RENDERED: &str = "session.frames_rendered";
    /// Protocol commands applied via [`crate::LiveSession::apply`].
    pub const COMMANDS: &str = "session.commands";
    /// µs settling the system (evaluation) before each rendered frame.
    pub const FRAME_EVAL_US: &str = "frame.eval_us";
    /// µs in incremental layout per rendered frame.
    pub const FRAME_LAYOUT_US: &str = "frame.layout_us";
    /// µs in damage-driven repaint per rendered frame.
    pub const FRAME_PAINT_US: &str = "frame.paint_us";
    /// Screen cells repainted per rendered frame.
    pub const FRAME_CELLS_REPAINTED: &str = "frame.cells_repainted";
    /// Percent of `boxed` evaluations served by the memo per frame.
    pub const FRAME_EVAL_REUSE_PCT: &str = "frame.eval_reuse_pct";
    /// Percent of layout nodes skipped by the measure cache per frame.
    pub const FRAME_LAYOUT_REUSE_PCT: &str = "frame.layout_reuse_pct";
    /// Fleet UPDATEs applied to this session (host-pushed, pre-compiled).
    pub const FLEET_UPDATES: &str = "session.fleet.updates";
    /// Fleet UPDATEs reverted by the host's canary auto-rollback.
    pub const FLEET_REVERTS: &str = "session.fleet.reverts";
    /// Fleet UPDATEs promoted (checkpoint dropped; the version stuck).
    pub const FLEET_PROMOTES: &str = "session.fleet.promotes";
}

/// Bucket bounds for percentage-valued histograms (reuse ratios).
const PCT_BOUNDS: &[u64] = &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

/// Bucket bounds for per-frame repainted-cell counts: spans a banner
/// row (~tens of cells) to a full 80×24 screen and beyond.
const CELL_BOUNDS: &[u64] = &[16, 64, 256, 1_024, 4_096, 16_384];

/// Pre-resolved handles for one live session.
#[derive(Debug, Clone)]
pub struct SessionMetrics {
    registry: Registry,
    edits_applied: Counter,
    edits_rejected: Counter,
    edits_quarantined: Counter,
    history_applied: Counter,
    history_quarantined: Counter,
    history_noop: Counter,
    frames_rendered: Counter,
    commands: Counter,
    fleet_updates: Counter,
    fleet_reverts: Counter,
    fleet_promotes: Counter,
    frame_eval_us: Histogram,
    frame_layout_us: Histogram,
    frame_paint_us: Histogram,
    frame_cells_repainted: Histogram,
    frame_eval_reuse_pct: Histogram,
    frame_layout_reuse_pct: Histogram,
}

impl SessionMetrics {
    /// Resolve every handle from `registry` (get-or-create by name).
    pub fn new(registry: &Registry) -> Self {
        SessionMetrics {
            registry: registry.clone(),
            edits_applied: registry.counter(names::EDITS_APPLIED),
            edits_rejected: registry.counter(names::EDITS_REJECTED),
            edits_quarantined: registry.counter(names::EDITS_QUARANTINED),
            history_applied: registry.counter(names::HISTORY_APPLIED),
            history_quarantined: registry.counter(names::HISTORY_QUARANTINED),
            history_noop: registry.counter(names::HISTORY_NOOP),
            frames_rendered: registry.counter(names::FRAMES_RENDERED),
            commands: registry.counter(names::COMMANDS),
            fleet_updates: registry.counter(names::FLEET_UPDATES),
            fleet_reverts: registry.counter(names::FLEET_REVERTS),
            fleet_promotes: registry.counter(names::FLEET_PROMOTES),
            frame_eval_us: registry.histogram(names::FRAME_EVAL_US),
            frame_layout_us: registry.histogram(names::FRAME_LAYOUT_US),
            frame_paint_us: registry.histogram(names::FRAME_PAINT_US),
            frame_cells_repainted: registry
                .histogram_with_bounds(names::FRAME_CELLS_REPAINTED, CELL_BOUNDS),
            frame_eval_reuse_pct: registry
                .histogram_with_bounds(names::FRAME_EVAL_REUSE_PCT, PCT_BOUNDS),
            frame_layout_reuse_pct: registry
                .histogram_with_bounds(names::FRAME_LAYOUT_REUSE_PCT, PCT_BOUNDS),
        }
    }

    /// The registry the handles live in (for snapshots).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The clock the registry times against.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.registry.clock()
    }

    /// Count one edit by its outcome — mirrors the bookkeeping of
    /// [`crate::LiveSession::update_counts`] exactly: `applied` matches
    /// the applied count, `rejected + quarantined` the rejected count.
    pub(crate) fn record_edit(&self, outcome: &EditOutcome) {
        match outcome {
            EditOutcome::Applied(_) => self.edits_applied.inc(),
            EditOutcome::Rejected(_) => self.edits_rejected.inc(),
            EditOutcome::Quarantined { .. } => self.edits_quarantined.inc(),
        }
    }

    /// Count one undo/redo step by its outcome.
    pub(crate) fn record_history(&self, outcome: &UndoOutcome) {
        match outcome {
            UndoOutcome::Applied => self.history_applied.inc(),
            UndoOutcome::NothingToUndo => self.history_noop.inc(),
            UndoOutcome::Quarantined(_) => self.history_quarantined.inc(),
        }
    }

    /// Count one protocol command.
    pub(crate) fn record_command(&self) {
        self.commands.inc();
    }

    /// Count one fleet UPDATE applied to this session.
    pub(crate) fn record_fleet_update(&self) {
        self.fleet_updates.inc();
    }

    /// Count one fleet UPDATE reverted by canary auto-rollback. Note the
    /// monotone-counter hazard: counters recorded by journal replay
    /// during the revert are *not* rolled back — they count what
    /// happened, not what persisted (same semantics as fault rollbacks
    /// in [`alive_core::metrics::SystemMetrics`]).
    pub(crate) fn record_fleet_revert(&self) {
        self.fleet_reverts.inc();
    }

    /// Count one fleet UPDATE promoted (its checkpoint dropped).
    pub(crate) fn record_fleet_promote(&self) {
        self.fleet_promotes.inc();
    }

    /// Feed one rendered frame's [`FrameStats`] into the histograms.
    /// Called only when the pipeline actually rendered (view-memo hits
    /// describe no new work).
    pub(crate) fn record_frame(&self, stats: &FrameStats) {
        self.frames_rendered.inc();
        self.frame_eval_us.record(stats.eval_us);
        self.frame_layout_us.record(stats.layout_us);
        self.frame_paint_us.record(stats.paint_us);
        self.frame_cells_repainted.record(stats.cells_repainted);
        // Ratios are only meaningful when the stage did any work.
        if stats.eval_hits + stats.eval_misses > 0 {
            self.frame_eval_reuse_pct
                .record((stats.eval_reuse() * 100.0).round() as u64);
        }
        if stats.nodes_measured + stats.nodes_reused > 0 {
            self.frame_layout_reuse_pct
                .record((stats.layout_reuse() * 100.0).round() as u64);
        }
    }
}
