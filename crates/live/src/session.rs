//! The live programming session — Section 3's developer experience.
//!
//! A [`LiveSession`] pairs the running [`System`] with the program's
//! *source text*. The programmer edits text; the session continuously
//! parses, type-checks, and — only when clean — applies the UPDATE
//! transition, so "the program keeps running while the programmer edits
//! their code". Ill-formed edits are rejected with diagnostics and the
//! previous program keeps running.

use crate::memo::{MemoCache, MemoStats};
use alive_core::boxtree::BoxNode;
use alive_core::fixup::FixupReport;
use alive_core::system::{ActionError, System, SystemConfig};
use alive_core::{compile, IncrementalCompiler, RuntimeError};
use alive_syntax::{apply_edits, Diagnostics, EditError, TextEdit};
use alive_ui::{layout, render_to_text, Point};

/// The result of submitting an edit to a live session.
#[derive(Debug)]
pub enum EditOutcome {
    /// The new code was accepted; the UPDATE transition ran with this
    /// fix-up, and the display was refreshed.
    Applied(FixupReport),
    /// The new code was rejected (parse, lower, or type errors); the
    /// old program keeps running and the source text is unchanged.
    Rejected(Diagnostics),
}

impl EditOutcome {
    /// Whether the edit was applied.
    pub fn is_applied(&self) -> bool {
        matches!(self, EditOutcome::Applied(_))
    }
}

/// A live programming session: source text + running system + optional
/// render cache.
#[derive(Debug)]
pub struct LiveSession {
    source: String,
    system: System,
    memo: Option<MemoCache>,
    updates_applied: u64,
    updates_rejected: u64,
    /// Per-keystroke compiler with an item-granular parse cache.
    compiler: IncrementalCompiler,
    /// Previously applied sources, oldest first (for undo).
    undo_stack: Vec<String>,
    /// Sources undone from (for redo); cleared by a fresh edit.
    redo_stack: Vec<String>,
}

impl LiveSession {
    /// Start a session from source text and run it to its first stable
    /// state (start page rendered).
    ///
    /// # Errors
    ///
    /// Compilation diagnostics if the initial program is ill-formed, or
    /// a boxed [`RuntimeError`] if its startup diverges.
    pub fn new(source: &str) -> Result<Self, SessionError> {
        Self::with_options(source, SystemConfig::default(), false)
    }

    /// Start a session with the §5 render cache enabled.
    ///
    /// # Errors
    ///
    /// See [`LiveSession::new`].
    pub fn with_memo(source: &str) -> Result<Self, SessionError> {
        Self::with_options(source, SystemConfig::default(), true)
    }

    /// Start a session with explicit system configuration.
    ///
    /// # Errors
    ///
    /// See [`LiveSession::new`].
    pub fn with_options(
        source: &str,
        config: SystemConfig,
        memo: bool,
    ) -> Result<Self, SessionError> {
        let program = compile(source).map_err(SessionError::Compile)?;
        let memo = memo.then(|| MemoCache::new(&program));
        let mut session = LiveSession {
            source: source.to_string(),
            system: System::with_config(program, config),
            memo,
            updates_applied: 0,
            updates_rejected: 0,
            compiler: IncrementalCompiler::new(),
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
        };
        session.refresh().map_err(SessionError::Runtime)?;
        Ok(session)
    }

    /// The current source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The running system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the running system (for driving interactions).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Number of code updates applied / rejected so far.
    pub fn update_counts(&self) -> (u64, u64) {
        (self.updates_applied, self.updates_rejected)
    }

    /// Render-cache statistics, if the cache is enabled.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.memo.as_ref().map(MemoCache::stats)
    }

    /// Run the system to a stable state, rendering through the cache
    /// when one is enabled.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from user code.
    pub fn refresh(&mut self) -> Result<(), RuntimeError> {
        loop {
            let render_pending = !self.system.display().is_valid()
                && self.system.queue().is_empty()
                && !self.system.page_stack().is_empty();
            if render_pending {
                if let Some(memo) = self.memo.as_mut() {
                    memo.begin_render(self.system.store(), self.system.version());
                    if self.system.render_with_hook(memo)? {
                        continue;
                    }
                }
            }
            if self.system.step()? == alive_core::system::StepKind::Stable {
                return Ok(());
            }
        }
    }

    /// Submit a full replacement source text — one keystroke's worth of
    /// the paper's continuous edit loop.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] only if re-rendering the *accepted* program
    /// fails; rejection of bad code is reported in the returned
    /// [`EditOutcome`], not as an error.
    pub fn edit_source(&mut self, new_source: &str) -> Result<EditOutcome, RuntimeError> {
        let outcome = self.swap_source(new_source)?;
        if outcome.is_applied() {
            self.redo_stack.clear();
        }
        Ok(outcome)
    }

    /// Undo the most recent applied edit: restore the previous source
    /// via a regular UPDATE transition (the model is fixed up, not
    /// rolled back — undo is an edit like any other, as in the paper's
    /// model where code changes are transitions).
    ///
    /// Returns `false` if there is nothing to undo.
    ///
    /// # Errors
    ///
    /// See [`LiveSession::edit_source`].
    pub fn undo(&mut self) -> Result<bool, RuntimeError> {
        let Some(previous) = self.undo_stack.pop() else {
            return Ok(false);
        };
        let current = self.source.clone();
        let outcome = self.swap_source(&previous)?;
        match outcome {
            EditOutcome::Applied(_) => {
                // swap_source pushed `current` onto undo; it belongs on
                // redo instead.
                self.undo_stack.pop();
                self.redo_stack.push(current);
                Ok(true)
            }
            EditOutcome::Rejected(_) => {
                unreachable!("previously applied sources always re-apply")
            }
        }
    }

    /// Redo the most recently undone edit. Returns `false` if there is
    /// nothing to redo.
    ///
    /// # Errors
    ///
    /// See [`LiveSession::edit_source`].
    pub fn redo(&mut self) -> Result<bool, RuntimeError> {
        let Some(next) = self.redo_stack.pop() else {
            return Ok(false);
        };
        self.swap_source(&next)?;
        Ok(true)
    }

    /// Number of edits that can currently be undone.
    pub fn undo_depth(&self) -> usize {
        self.undo_stack.len()
    }

    fn swap_source(&mut self, new_source: &str) -> Result<EditOutcome, RuntimeError> {
        let program = match self.compiler.compile(new_source) {
            Ok(p) => p,
            Err(diags) => {
                self.updates_rejected += 1;
                return Ok(EditOutcome::Rejected(diags));
            }
        };
        // UPDATE requires a stable state.
        self.refresh()?;
        let report = match self.system.update(program) {
            Ok(report) => report,
            Err(ActionError::IllTyped(diags)) => {
                self.updates_rejected += 1;
                return Ok(EditOutcome::Rejected(diags));
            }
            Err(other) => {
                unreachable!("update from a stable state cannot fail with {other}")
            }
        };
        self.undo_stack
            .push(std::mem::replace(&mut self.source, new_source.to_string()));
        if let Some(memo) = self.memo.as_mut() {
            memo.on_update(self.system.program(), self.system.version());
        }
        self.updates_applied += 1;
        self.refresh()?;
        Ok(EditOutcome::Applied(report))
    }

    /// Apply span-addressed edits to the current source and submit the
    /// result.
    ///
    /// # Errors
    ///
    /// [`SessionError::Edit`] if the edits are malformed;
    /// [`SessionError::Runtime`] if the accepted program fails to
    /// re-render.
    pub fn apply_text_edits(&mut self, edits: &[TextEdit]) -> Result<EditOutcome, SessionError> {
        let new_source = apply_edits(&self.source, edits).map_err(SessionError::Edit)?;
        self.edit_source(&new_source).map_err(SessionError::Runtime)
    }

    /// The current display's box tree (refreshing first).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from user code.
    pub fn display_tree(&mut self) -> Result<BoxNode, RuntimeError> {
        self.refresh()?;
        Ok(self
            .system
            .display()
            .content()
            .expect("stable state has a display")
            .clone())
    }

    /// Render the current display as text — the live view.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from user code.
    pub fn live_view(&mut self) -> Result<String, RuntimeError> {
        let root = self.display_tree()?;
        Ok(render_to_text(&layout(&root)))
    }

    /// Tap the screen at a point (hit-tested), then refresh.
    /// Returns whether a tappable box was hit.
    ///
    /// # Errors
    ///
    /// [`SessionError::Runtime`] if the handler or re-render fails.
    pub fn tap_at(&mut self, x: i32, y: i32) -> Result<bool, SessionError> {
        self.refresh().map_err(SessionError::Runtime)?;
        let hit =
            alive_ui::tap_at(&mut self.system, Point::new(x, y)).map_err(SessionError::Action)?;
        self.refresh().map_err(SessionError::Runtime)?;
        Ok(hit)
    }

    /// Tap a box by its path in the box tree, then refresh.
    ///
    /// # Errors
    ///
    /// [`SessionError::Action`] if the path or handler is missing.
    pub fn tap_path(&mut self, path: &[usize]) -> Result<(), SessionError> {
        self.refresh().map_err(SessionError::Runtime)?;
        self.system.tap(path).map_err(SessionError::Action)?;
        self.refresh().map_err(SessionError::Runtime)
    }

    /// Press the back button, then refresh.
    ///
    /// At the root page this is a typed error, not a pop: popping the
    /// last page would empty the stack and the STARTUP transition would
    /// re-run `init` from scratch — a hidden restart, which is exactly
    /// what a live session promises never to do.
    ///
    /// # Errors
    ///
    /// [`SessionError::Action`] ([`ActionError::NoPageToPop`]) at the
    /// root page; [`SessionError::Runtime`] if re-rendering fails.
    pub fn back(&mut self) -> Result<(), SessionError> {
        if self.system.page_stack().len() <= 1 {
            return Err(SessionError::Action(ActionError::NoPageToPop));
        }
        self.system.back();
        self.refresh().map_err(SessionError::Runtime)
    }

    /// Edit the text of the box at `path` (fires its `onedit` handler),
    /// then refresh.
    ///
    /// # Errors
    ///
    /// [`SessionError::Action`] if the box has no edit handler.
    pub fn edit_box(&mut self, path: &[usize], text: &str) -> Result<(), SessionError> {
        self.refresh().map_err(SessionError::Runtime)?;
        self.system
            .edit_box(path, text)
            .map_err(SessionError::Action)?;
        self.refresh().map_err(SessionError::Runtime)
    }
}

/// Errors surfaced by [`LiveSession`] entry points.
#[derive(Debug)]
pub enum SessionError {
    /// The initial program did not compile.
    Compile(Diagnostics),
    /// User code failed at run time (divergence, partial primitive).
    Runtime(RuntimeError),
    /// A user action could not be delivered.
    Action(ActionError),
    /// Text edits were malformed.
    Edit(EditError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Compile(ds) => write!(f, "program does not compile:\n{ds}"),
            SessionError::Runtime(e) => write!(f, "runtime error: {e}"),
            SessionError::Action(e) => write!(f, "action failed: {e}"),
            SessionError::Edit(e) => write!(f, "bad text edit: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::Value;

    const APP: &str = r#"
global count : number = 0
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 10; }
        }
    }
}
"#;

    #[test]
    fn session_starts_and_renders() {
        let mut s = LiveSession::new(APP).expect("starts");
        assert_eq!(s.live_view().expect("renders"), "count is 1\n");
        assert!(s.system().is_stable());
    }

    #[test]
    fn live_edit_keeps_model_state() {
        let mut s = LiveSession::new(APP).expect("starts");
        s.tap_path(&[0]).expect("tap");
        assert_eq!(s.live_view().expect("renders"), "count is 11\n");

        let outcome = s
            .edit_source(&APP.replace("count is ", "n = "))
            .expect("edit runs");
        assert!(outcome.is_applied());
        // Model preserved across the code update; init did not re-run.
        assert_eq!(s.live_view().expect("renders"), "n = 11\n");
        assert_eq!(s.update_counts(), (1, 0));
    }

    #[test]
    fn broken_edit_is_rejected_and_old_code_runs() {
        let mut s = LiveSession::new(APP).expect("starts");
        // Mid-keystroke state: incomplete expression.
        let outcome = s
            .edit_source(&APP.replace("count + 10", "count + "))
            .expect("edit handled");
        let EditOutcome::Rejected(diags) = outcome else {
            panic!("expected rejection");
        };
        assert!(diags.has_errors());
        assert_eq!(s.update_counts(), (0, 1));
        // Old program still runs, source unchanged.
        assert_eq!(s.live_view().expect("renders"), "count is 1\n");
        assert!(s.source().contains("count + 10"));
    }

    #[test]
    fn text_edits_apply_by_span() {
        let mut s = LiveSession::new(APP).expect("starts");
        let at = s.source().find("10").expect("found") as u32;
        let outcome = s
            .apply_text_edits(&[TextEdit::replace(
                alive_syntax::Span::new(at, at + 2),
                "100",
            )])
            .expect("edits apply");
        assert!(outcome.is_applied());
        s.tap_path(&[0]).expect("tap");
        assert_eq!(s.system().store().get("count"), Some(&Value::Number(101.0)));
    }

    #[test]
    fn memo_session_produces_identical_views() {
        let src = r#"
global items : list (string, number) = []
global sel : number = 0
page start() {
    init { items := web.listings(20); }
    render {
        boxed { post "selected " ++ sel; }
        foreach entry in items {
            boxed {
                post entry.1 ++ " $" ++ entry.2;
                on tap { sel := sel + 1; }
            }
        }
    }
}
"#;
        let mut plain = LiveSession::new(src).expect("starts");
        let mut memo = LiveSession::with_memo(src).expect("starts");
        assert_eq!(plain.live_view().expect("v"), memo.live_view().expect("v"));
        for _ in 0..3 {
            plain.tap_path(&[1]).expect("tap");
            memo.tap_path(&[1]).expect("tap");
            assert_eq!(plain.live_view().expect("v"), memo.live_view().expect("v"));
        }
        let stats = memo.memo_stats().expect("enabled");
        assert!(stats.hits > 0, "listing rows should be reused: {stats:?}");
    }

    #[test]
    fn undo_redo_are_update_transitions() {
        let mut s = LiveSession::new(APP).expect("starts");
        s.tap_path(&[0]).expect("tap"); // count = 11
        assert_eq!(s.undo_depth(), 0);
        assert!(!s.undo().expect("handled"), "nothing to undo yet");

        let v1 = APP.replace("count is", "n =");
        let v2 = APP.replace("count is", "total:");
        assert!(s.edit_source(&v1).expect("runs").is_applied());
        assert!(s.edit_source(&v2).expect("runs").is_applied());
        assert_eq!(s.undo_depth(), 2);
        assert_eq!(s.live_view().expect("renders"), "total: 11\n");

        // Undo restores the previous code; the model stays at 11
        // (undo is just another UPDATE, not time travel).
        assert!(s.undo().expect("runs"));
        assert_eq!(s.live_view().expect("renders"), "n = 11\n");
        assert!(s.undo().expect("runs"));
        assert_eq!(s.live_view().expect("renders"), "count is 11\n");
        assert!(!s.undo().expect("handled"), "stack exhausted");

        // Redo walks forward again.
        assert!(s.redo().expect("runs"));
        assert_eq!(s.live_view().expect("renders"), "n = 11\n");
        // A fresh edit clears the redo stack.
        let v3 = s.source().replace("n =", "N:");
        assert!(s.edit_source(&v3).expect("runs").is_applied());
        assert!(!s.redo().expect("handled"));
    }

    #[test]
    fn memo_cache_cleared_on_update() {
        let mut s = LiveSession::with_memo(APP).expect("starts");
        s.tap_path(&[0]).expect("tap");
        let outcome = s
            .edit_source(&APP.replace("count is", "total:"))
            .expect("edit");
        assert!(outcome.is_applied());
        assert_eq!(s.live_view().expect("renders"), "total: 11\n");
    }
}
