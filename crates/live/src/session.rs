//! The live programming session — Section 3's developer experience.
//!
//! A [`LiveSession`] pairs the running [`System`] with the program's
//! *source text*. The programmer edits text; the session continuously
//! parses, type-checks, and — only when clean — applies the UPDATE
//! transition, so "the program keeps running while the programmer edits
//! their code". Ill-formed edits are rejected with diagnostics and the
//! previous program keeps running.
//!
//! # Degraded, not dead
//!
//! Runtime faults (divergence caught by fuel, partial primitives) are
//! *contained*, never fatal:
//!
//! * a faulting **handler** rolls back and drops its event — the model
//!   is untouched, the last good view stays up (tagged stale);
//! * a faulting **edit** (type-correct code whose init/render faults as
//!   soon as it runs) is **quarantined**: the session auto-reverts to
//!   the previous source and reports the fault like a rejection;
//! * every contained fault lands in a bounded [`FaultLog`], surfaced to
//!   tooling as a [`LiveSession::fault_banner`] over the last good view.
//!
//! Consequently [`LiveSession::live_view`] is total: whatever the user
//! code does, the session has something to show.

use crate::fault_log::FaultLog;
use crate::memo::{MemoCache, MemoStats};
use crate::metrics::SessionMetrics;
use crate::pipeline::{FramePipeline, FrameStats};
use crate::protocol::SessionCommand;
use alive_core::boxtree::{BoxNode, Display};
use alive_core::fixup::FixupReport;
use alive_core::metrics::SystemMetrics;
use alive_core::system::{ActionError, StepKind, System, SystemConfig};
use alive_core::{compile, Fault, IncrementalCompiler, Program};
use alive_obs::{Clock, MetricsSnapshot, MonotonicClock, Registry};
use alive_syntax::{apply_edits, Diagnostics, EditError, TextEdit};
use alive_ui::Point;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The result of submitting an edit to a live session.
#[derive(Debug)]
pub enum EditOutcome {
    /// The new code was accepted; the UPDATE transition ran with this
    /// fix-up, and the display was refreshed.
    Applied(FixupReport),
    /// The new code was rejected (parse, lower, or type errors); the
    /// old program keeps running and the source text is unchanged.
    Rejected(Diagnostics),
    /// The new code type-checked, but faulted as soon as it ran (a
    /// diverging or partial init/render). The session auto-reverted to
    /// the previous source — quarantine counts as a rejection, with the
    /// fault as the diagnostic.
    Quarantined {
        /// The fault the new code produced before being reverted.
        fault: Fault,
        /// The fix-up report of the rolled-back update.
        report: FixupReport,
    },
}

impl EditOutcome {
    /// Whether the edit was applied (and stayed applied).
    pub fn is_applied(&self) -> bool {
        matches!(self, EditOutcome::Applied(_))
    }

    /// Whether the edit was quarantined (applied, faulted, reverted).
    pub fn is_quarantined(&self) -> bool {
        matches!(self, EditOutcome::Quarantined { .. })
    }
}

/// The result of an undo/redo request — typed, so a frontend can tell a
/// real history step from a no-op (and report each honestly).
#[derive(Debug, Clone, PartialEq)]
pub enum UndoOutcome {
    /// The neighbouring history entry was applied as a regular UPDATE
    /// transition; source and display now reflect it.
    Applied,
    /// The history stack was empty; the session is unchanged. (Also the
    /// redo-side "nothing to redo".)
    NothingToUndo,
    /// The history entry ran but was quarantined: it faulted on its
    /// first transition and the session auto-reverted, keeping the
    /// entry on its stack. Carries the fault when one was recorded (a
    /// previously-applied source failing to even recompile is reported
    /// the same way, with no fault).
    Quarantined(Option<Box<Fault>>),
}

impl UndoOutcome {
    /// Whether the history step actually happened.
    pub fn is_applied(&self) -> bool {
        matches!(self, UndoOutcome::Applied)
    }
}

/// Outcome of a host-driven fleet UPDATE on one session
/// ([`LiveSession::fleet_update`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetUpdateOutcome {
    /// The UPDATE transition ran; the session now runs the new program
    /// with a pre-transaction checkpoint parked for revert/promote.
    Applied {
        /// Whether the new code faulted the moment it ran (its
        /// init/render, before any further traffic). The session keeps
        /// running the new program — degraded, banner up — so the host's
        /// rollout state machine, not the session, decides the revert.
        faulted: bool,
    },
    /// The session's source no longer matches the transaction's base
    /// version (it edited locally since the transaction opened); it was
    /// left untouched.
    Diverged,
    /// Another fleet transaction's checkpoint is still pending on this
    /// session; it was left untouched.
    Busy,
    /// The UPDATE transition itself refused (internal surprise — after a
    /// refresh the queue is drained, so this should not happen); the
    /// session was left untouched.
    Failed(String),
}

/// Pre-transaction state parked on a session between a fleet UPDATE and
/// the transaction's promote/revert decision — PR 2's checkpoint
/// machinery, extended to everything a revert must restore *plus* a
/// journal of the client commands answered while the canary was live
/// (re-applied after the revert, so the session converges to what a solo
/// replay of its full history produces).
#[derive(Debug)]
struct FleetCheckpoint {
    tx: u64,
    system: System,
    source: String,
    faults: FaultLog,
    undo_stack: Vec<String>,
    redo_stack: Vec<String>,
    updates_applied: u64,
    updates_rejected: u64,
    pending_txs: BTreeMap<u64, PendingTx>,
    next_tx: u64,
    journal: Vec<SessionCommand>,
    journal_overflow: bool,
}

/// Commands journaled per pending fleet checkpoint before the journal
/// stops recording ([`FleetCheckpoint::journal_overflow`]). Past the
/// bound a revert restores the checkpoint but skips the replay — the
/// session is still byte-identical to its *pre-transaction* state, just
/// not to a full-history solo replay. Observation windows are short;
/// 4096 commands inside one is a misbehaving client.
const FLEET_JOURNAL_CAPACITY: usize = 4096;

/// One open edit transaction staged on a solo session
/// ([`LiveSession::tx_open`]): the batched source so far.
#[derive(Debug, Clone)]
struct PendingTx {
    staged: String,
    edits: usize,
}

/// A typed failure from the solo transaction API.
#[derive(Debug)]
pub enum TxError {
    /// No open transaction with this id.
    UnknownTx(u64),
    /// A staged batch was malformed against the staged text.
    Edit(EditError),
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::UnknownTx(tx) => write!(f, "no open transaction tx#{tx}"),
            TxError::Edit(e) => write!(f, "bad transaction edit: {e}"),
        }
    }
}

impl std::error::Error for TxError {}

/// A live programming session: source text + running system + optional
/// render cache.
#[derive(Debug)]
pub struct LiveSession {
    source: String,
    system: System,
    memo: Option<MemoCache>,
    updates_applied: u64,
    updates_rejected: u64,
    /// Per-keystroke compiler with an item-granular parse cache.
    compiler: IncrementalCompiler,
    /// Previously applied sources, oldest first (for undo).
    undo_stack: Vec<String>,
    /// Sources undone from (for redo); cleared by a fresh edit.
    redo_stack: Vec<String>,
    /// Contained faults, newest last, bounded.
    faults: FaultLog,
    /// Layout + paint reuse across frames (always on: byte-identical to
    /// from-scratch rendering by construction).
    pipeline: FramePipeline,
    /// Observability handles, when a registry was attached at
    /// construction ([`LiveSession::with_shared_program_observed`]).
    metrics: Option<SessionMetrics>,
    /// The clock frame timings are taken against — the registry's clock
    /// when metrics are attached, the real monotonic clock otherwise.
    clock: Arc<dyn Clock>,
    /// µs the system spent settling (evaluation) before the last
    /// rendered frame; stamped into [`FrameStats::eval_us`].
    last_eval_us: u64,
    /// The slice of [`LiveSession::last_eval_us`] the system spent
    /// compiling bytecode (the [`alive_core::system::VmStats::compile_us`]
    /// delta across the settle); stamped into
    /// [`FrameStats::eval_compile_us`].
    last_compile_us: u64,
    /// Pre-transaction checkpoint while a fleet UPDATE awaits its
    /// promote/revert decision. At most one — a session runs at most one
    /// fleet transaction at a time.
    fleet_checkpoint: Option<FleetCheckpoint>,
    /// Open solo edit transactions, staged source per id.
    pending_txs: BTreeMap<u64, PendingTx>,
    /// Next solo transaction id.
    next_tx: u64,
    /// Candidate repairs offered by the last direct-manipulation
    /// selection, together with the source snapshot they were computed
    /// against (applying one refuses if the source has moved on).
    pending_repairs: Option<crate::repair::PendingRepairs>,
    /// Babylonian live-example probes, cached per
    /// `(version, display generation)` so continuous evaluation costs
    /// nothing while neither code nor model changes.
    examples: crate::examples::ExampleCache,
}

impl LiveSession {
    /// Start a session from source text and run it to its first stable
    /// state (start page rendered). If the program's startup faults,
    /// the session still starts — degraded, with the fault logged.
    ///
    /// # Errors
    ///
    /// Compilation diagnostics if the initial program is ill-formed.
    pub fn new(source: &str) -> Result<Self, SessionError> {
        Self::with_options(source, SystemConfig::default(), false)
    }

    /// Start a session with the §5 render cache enabled.
    ///
    /// # Errors
    ///
    /// See [`LiveSession::new`].
    pub fn with_memo(source: &str) -> Result<Self, SessionError> {
        Self::with_options(source, SystemConfig::default(), true)
    }

    /// Start a session with explicit system configuration.
    ///
    /// # Errors
    ///
    /// See [`LiveSession::new`].
    pub fn with_options(
        source: &str,
        config: SystemConfig,
        memo: bool,
    ) -> Result<Self, SessionError> {
        let program = compile(source).map_err(SessionError::Compile)?;
        Ok(Self::with_shared_program(
            source,
            std::sync::Arc::new(program),
            config,
            memo,
        ))
    }

    /// Start a session around an already-compiled shared program — the
    /// host path: one compile per source version, shared across every
    /// session born from it. The caller vouches that `program` is the
    /// compilation of `source` (a mismatch shows up as confusing
    /// navigation spans, not unsoundness: the system only runs the
    /// program it is given).
    pub fn with_shared_program(
        source: &str,
        program: Arc<alive_core::Program>,
        config: SystemConfig,
        memo: bool,
    ) -> Self {
        Self::with_shared_program_observed(source, program, config, memo, None)
    }

    /// [`LiveSession::with_shared_program`] with observability: when a
    /// [`Registry`] is given, system- and session-level metrics are
    /// resolved from it and every frame timing runs on its clock (a
    /// [`alive_obs::ManualClock`] makes the whole session's metrics
    /// deterministic). Attaching at construction — before the first
    /// transition — is what lets `system.display_sets` reconcile
    /// exactly with [`System::display_generation`].
    pub fn with_shared_program_observed(
        source: &str,
        program: Arc<alive_core::Program>,
        config: SystemConfig,
        memo: bool,
        registry: Option<&Registry>,
    ) -> Self {
        let memo = memo.then(|| MemoCache::new(&program));
        let mut system = System::with_shared_program(program, config);
        let mut pipeline = FramePipeline::new();
        let mut clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let metrics = registry.map(|registry| {
            system.set_metrics(SystemMetrics::new(registry));
            clock = registry.clock();
            pipeline.set_clock(registry.clock());
            SessionMetrics::new(registry)
        });
        let mut session = LiveSession {
            source: source.to_string(),
            system,
            memo,
            updates_applied: 0,
            updates_rejected: 0,
            compiler: IncrementalCompiler::new(),
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
            faults: FaultLog::new(),
            pipeline,
            metrics,
            clock,
            last_eval_us: 0,
            last_compile_us: 0,
            fleet_checkpoint: None,
            pending_txs: BTreeMap::new(),
            next_tx: 1,
            pending_repairs: None,
            examples: crate::examples::ExampleCache::default(),
        };
        session.refresh();
        session
    }

    /// Start an observed session from source text: compile, then
    /// [`LiveSession::with_shared_program_observed`].
    ///
    /// # Errors
    ///
    /// Compilation diagnostics if the program is ill-formed.
    pub fn observed(
        source: &str,
        config: SystemConfig,
        memo: bool,
        registry: &Registry,
    ) -> Result<Self, SessionError> {
        let program = compile(source).map_err(SessionError::Compile)?;
        Ok(Self::with_shared_program_observed(
            source,
            Arc::new(program),
            config,
            memo,
            Some(registry),
        ))
    }

    /// The current source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The running system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the running system (for driving interactions).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Number of code updates applied / rejected so far. Quarantined
    /// edits count as rejections: they did not stay applied.
    pub fn update_counts(&self) -> (u64, u64) {
        (self.updates_applied, self.updates_rejected)
    }

    /// Render-cache statistics, if the cache is enabled.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.memo.as_ref().map(MemoCache::stats)
    }

    /// Frame-pipeline statistics: reuse counters for every layer of the
    /// last [`LiveSession::live_view`] frame (evaluation, layout, paint,
    /// view memo) plus per-stage timings.
    pub fn frame_stats(&self) -> FrameStats {
        let mut stats = self.pipeline.stats();
        stats.eval_us = self.last_eval_us;
        stats.eval_compile_us = self.last_compile_us;
        stats.eval_exec_us = self.last_eval_us.saturating_sub(self.last_compile_us);
        stats.vm_cache_hits = self.system.vm_stats().cache_hits;
        if let Some(memo) = self.memo_stats() {
            stats.eval_hits = memo.hits;
            stats.eval_misses = memo.misses;
        }
        stats
    }

    /// The session's observability handles, when a registry was
    /// attached at construction.
    pub fn metrics(&self) -> Option<&SessionMetrics> {
        self.metrics.as_ref()
    }

    /// A point-in-time copy of every metric the session (and its
    /// system) has recorded — what [`crate::SessionCommand::Metrics`]
    /// answers with. Empty when no registry is attached: metrics are
    /// an opt-in, never an error.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .as_ref()
            .map(|metrics| metrics.registry().snapshot())
            .unwrap_or_default()
    }

    /// Evaluate the program's Babylonian live examples against the
    /// running model — every `example` item's body (and `expect`
    /// clause, when present), through the session's configured engine.
    /// Results are cached per `(program version, display generation)`:
    /// every state change is followed by a render that bumps the
    /// generation and every edit bumps the version, so the continuous
    /// re-evaluation the probes promise costs nothing while the program
    /// and model stand still.
    pub fn examples(&mut self) -> Vec<crate::examples::ExampleProbe> {
        self.examples.probes(&self.system)
    }

    /// Probe-cache counters: recomputations vs cache hits across
    /// [`LiveSession::examples`] calls.
    pub fn example_stats(&self) -> crate::examples::ExampleStats {
        self.examples.stats
    }

    /// The log of contained faults.
    pub fn fault_log(&self) -> &FaultLog {
        &self.faults
    }

    /// A one-line banner describing the latest fault, for display over
    /// the last good view. `None` when no fault has occurred.
    pub fn fault_banner(&self) -> Option<String> {
        self.faults.banner()
    }

    /// Run the system until it has nothing left to do, containing every
    /// fault on the way: faulting events are rolled back and dropped
    /// (recorded in the [`FaultLog`]), the display degrades to the last
    /// good tree. This never fails — a session is always settleable.
    pub fn refresh(&mut self) {
        if self.memo.is_none() {
            // Each faulting event is consumed (its transition rolled
            // back), so the loop strictly drains the queue.
            loop {
                match self.system.run_to_stable() {
                    Ok(_) => return,
                    Err(fault) => {
                        self.faults.record(fault);
                        // `⊥` after a fault means there is no good tree
                        // to fall back to; retrying RENDER would fault
                        // forever.
                        if matches!(self.system.display(), Display::Invalid) {
                            return;
                        }
                    }
                }
            }
        }
        // Memo path: drive step-by-step so every RENDER goes through
        // the cache, with the same cascade bound as `run_to_stable`.
        let budget = self.system.config().max_transitions;
        let mut steps = 0u64;
        let mut contained_overflow = false;
        loop {
            let render_pending = matches!(self.system.display(), Display::Invalid)
                && self.system.queue().is_empty()
                && !self.system.page_stack().is_empty();
            if render_pending {
                if let Some(memo) = self.memo.as_mut() {
                    memo.begin_render(self.system.store(), self.system.version());
                    match self.system.render_with_hook(memo) {
                        Ok(true) => continue,
                        Ok(false) => {}
                        Err(fault) => {
                            self.faults.record(fault);
                            if matches!(self.system.display(), Display::Invalid) {
                                return;
                            }
                            continue;
                        }
                    }
                }
            }
            match self.system.step() {
                Ok(StepKind::Stable) => return,
                Ok(_) => {
                    steps += 1;
                    if steps > budget {
                        // Runaway event cascade: contain it exactly like
                        // `run_to_stable` (drop the queue, degrade the
                        // display, log the overflow), then keep draining
                        // through this loop so any containment tail
                        // render still goes through the cache hook
                        // instead of falling off the fast path.
                        if contained_overflow {
                            // A second overflow means STARTUP restarted
                            // the cascade; give up settling this call.
                            return;
                        }
                        contained_overflow = true;
                        steps = 0;
                        self.faults.record(self.system.contain_overflow());
                    }
                }
                Err(fault) => {
                    self.faults.record(fault);
                    if matches!(self.system.display(), Display::Invalid) {
                        return;
                    }
                }
            }
        }
    }

    /// Submit a full replacement source text — one keystroke's worth of
    /// the paper's continuous edit loop. Never fails: bad code is
    /// [`EditOutcome::Rejected`], faulting code is
    /// [`EditOutcome::Quarantined`] (auto-reverted).
    pub fn edit_source(&mut self, new_source: &str) -> EditOutcome {
        let outcome = self.swap_source(new_source);
        if outcome.is_applied() {
            self.redo_stack.clear();
        }
        outcome
    }

    /// Undo the most recent applied edit: restore the previous source
    /// via a regular UPDATE transition (the model is fixed up, not
    /// rolled back — undo is an edit like any other, as in the paper's
    /// model where code changes are transitions).
    ///
    /// The outcome says whether a history step happened:
    /// [`UndoOutcome::NothingToUndo`] if the stack was empty, and
    /// [`UndoOutcome::Quarantined`] if the undone code faulted against
    /// the current model (the session is unchanged in that case).
    pub fn undo(&mut self) -> UndoOutcome {
        let outcome = self.undo_inner();
        if let Some(metrics) = &self.metrics {
            metrics.record_history(&outcome);
        }
        outcome
    }

    fn undo_inner(&mut self) -> UndoOutcome {
        let Some(previous) = self.undo_stack.pop() else {
            return UndoOutcome::NothingToUndo;
        };
        let current = self.source.clone();
        match self.swap_source(&previous) {
            EditOutcome::Applied(_) => {
                // swap_source pushed `current` onto undo; it belongs on
                // redo instead.
                self.undo_stack.pop();
                self.redo_stack.push(current);
                UndoOutcome::Applied
            }
            EditOutcome::Quarantined { fault, .. } => {
                // The session was left as it was; keep the undo entry.
                self.undo_stack.push(previous);
                UndoOutcome::Quarantined(Some(Box::new(fault)))
            }
            EditOutcome::Rejected(_) => {
                self.undo_stack.push(previous);
                UndoOutcome::Quarantined(None)
            }
        }
    }

    /// Redo the most recently undone edit. Same outcomes as
    /// [`LiveSession::undo`].
    pub fn redo(&mut self) -> UndoOutcome {
        let outcome = self.redo_inner();
        if let Some(metrics) = &self.metrics {
            metrics.record_history(&outcome);
        }
        outcome
    }

    fn redo_inner(&mut self) -> UndoOutcome {
        let Some(next) = self.redo_stack.pop() else {
            return UndoOutcome::NothingToUndo;
        };
        match self.swap_source(&next) {
            EditOutcome::Applied(_) => UndoOutcome::Applied,
            EditOutcome::Quarantined { fault, .. } => {
                self.redo_stack.push(next);
                UndoOutcome::Quarantined(Some(Box::new(fault)))
            }
            EditOutcome::Rejected(_) => {
                self.redo_stack.push(next);
                UndoOutcome::Quarantined(None)
            }
        }
    }

    /// Number of edits that can currently be undone.
    pub fn undo_depth(&self) -> usize {
        self.undo_stack.len()
    }

    fn swap_source(&mut self, new_source: &str) -> EditOutcome {
        let outcome = self.swap_source_inner(new_source);
        // Mirrors `update_counts` exactly: metrics `applied` tracks the
        // applied count; `rejected + quarantined` the rejected count.
        if let Some(metrics) = &self.metrics {
            metrics.record_edit(&outcome);
        }
        outcome
    }

    fn swap_source_inner(&mut self, new_source: &str) -> EditOutcome {
        let program = match self.compiler.compile(new_source) {
            Ok(p) => p,
            Err(diags) => {
                self.updates_rejected += 1;
                return EditOutcome::Rejected(diags);
            }
        };
        // UPDATE requires a drained queue; settling also re-renders, so
        // the pre-edit state below is the freshest good state.
        self.refresh();
        // The edit transaction checkpoint: if the new code faults on
        // its first run, the whole session state rolls back to here.
        // (Cloning shares the program `Arc` and the injector, so this is
        // cheap relative to an update.)
        let checkpoint = self.system.clone();
        let report = match self.system.update(program) {
            Ok(report) => report,
            Err(ActionError::IllTyped(diags)) => {
                self.updates_rejected += 1;
                return EditOutcome::Rejected(diags);
            }
            Err(other) => {
                // After refresh() the queue is drained, so NotStable
                // (or anything else) here is an internal surprise —
                // report it as a rejection rather than dying.
                self.updates_rejected += 1;
                let mut diags = Diagnostics::new();
                diags.push(alive_syntax::Diagnostic::error(
                    alive_syntax::Span::DUMMY,
                    format!("update could not be applied: {other}"),
                ));
                return EditOutcome::Rejected(diags);
            }
        };
        if let Some(memo) = self.memo.as_mut() {
            memo.on_update(self.system.program(), self.system.version());
        }
        let old_source = std::mem::replace(&mut self.source, new_source.to_string());
        let faults_before = self.faults.total();
        self.refresh();
        if self.faults.total() > faults_before {
            // The new code faulted the moment it ran (UPDATE wiped the
            // display, so only the new version's init/render executed
            // here). Quarantine the edit: revert the machine and the
            // source, report like a rejection.
            let fault = self
                .faults
                .latest()
                .cloned()
                .unwrap_or_else(|| unreachable!("total() grew, so a fault was recorded"));
            self.system = checkpoint;
            self.source = old_source;
            // The probe cache may be keyed to the quarantined version.
            self.examples.invalidate();
            if let Some(memo) = self.memo.as_mut() {
                // The cache may hold entries keyed to the quarantined
                // version; rebuild it against the restored program.
                *memo = MemoCache::new(self.system.program());
            }
            self.updates_rejected += 1;
            return EditOutcome::Quarantined { fault, report };
        }
        self.undo_stack.push(old_source);
        self.updates_applied += 1;
        EditOutcome::Applied(report)
    }

    /// Apply span-addressed edits to the current source and submit the
    /// result.
    ///
    /// # Errors
    ///
    /// [`SessionError::Edit`] if the edits are malformed.
    pub fn apply_text_edits(&mut self, edits: &[TextEdit]) -> Result<EditOutcome, SessionError> {
        let new_source = apply_edits(&self.source, edits).map_err(SessionError::Edit)?;
        Ok(self.edit_source(&new_source))
    }

    /// Park the candidate repairs from a direct-manipulation selection
    /// (see [`crate::repair`]); replaces any earlier offer.
    pub(crate) fn set_pending_repairs(&mut self, pending: crate::repair::PendingRepairs) {
        self.pending_repairs = Some(pending);
    }

    /// The parked repair offer, if any.
    pub(crate) fn pending_repairs(&self) -> Option<&crate::repair::PendingRepairs> {
        self.pending_repairs.as_ref()
    }

    /// Withdraw the parked repair offer.
    pub(crate) fn clear_pending_repairs(&mut self) {
        self.pending_repairs = None;
    }

    // -----------------------------------------------------------------
    // Edit transactions (solo) — the degenerate single-session form of
    // the host's fleet transaction: batch edits against a staged copy of
    // the source, then commit them as ONE UPDATE transition (atomic: the
    // running program never sees a half-applied batch).
    // -----------------------------------------------------------------

    /// Open an edit transaction: stage a copy of the current source for
    /// batched edits. Returns the transaction id.
    pub fn tx_open(&mut self) -> u64 {
        let tx = self.next_tx;
        self.next_tx += 1;
        self.pending_txs.insert(
            tx,
            PendingTx {
                staged: self.source.clone(),
                edits: 0,
            },
        );
        tx
    }

    /// Stage one batch of span-addressed edits on an open transaction.
    /// Spans address the *staged* text (the result of every batch staged
    /// so far — see [`alive_syntax::apply_edit_batches`]); the running
    /// program is untouched until commit. Returns the total number of
    /// edits staged on the transaction.
    ///
    /// # Errors
    ///
    /// [`TxError::UnknownTx`] / [`TxError::Edit`]; the staged text is
    /// unchanged on error.
    pub fn tx_edit(&mut self, tx: u64, edits: &[TextEdit]) -> Result<usize, TxError> {
        let pending = self
            .pending_txs
            .get_mut(&tx)
            .ok_or(TxError::UnknownTx(tx))?;
        pending.staged = apply_edits(&pending.staged, edits).map_err(TxError::Edit)?;
        pending.edits += edits.len();
        Ok(pending.edits)
    }

    /// Commit an open transaction: submit the staged source as one
    /// UPDATE ([`LiveSession::edit_source`] semantics — rejection and
    /// quarantine included). The transaction closes on
    /// [`EditOutcome::Applied`] and [`EditOutcome::Quarantined`] (the
    /// batch was decided); it stays open on [`EditOutcome::Rejected`] so
    /// the client can stage a fix and retry.
    ///
    /// # Errors
    ///
    /// [`TxError::UnknownTx`] if no such transaction is open.
    pub fn tx_commit(&mut self, tx: u64) -> Result<EditOutcome, TxError> {
        let staged = self
            .pending_txs
            .get(&tx)
            .ok_or(TxError::UnknownTx(tx))?
            .staged
            .clone();
        let outcome = self.edit_source(&staged);
        if !matches!(outcome, EditOutcome::Rejected(_)) {
            self.pending_txs.remove(&tx);
        }
        Ok(outcome)
    }

    /// Abort an open transaction, discarding its staged edits. Returns
    /// whether the id named an open transaction.
    pub fn tx_abort(&mut self, tx: u64) -> bool {
        self.pending_txs.remove(&tx).is_some()
    }

    /// Number of edits staged on an open transaction, or `None` if the
    /// id is unknown.
    pub fn tx_edits(&self, tx: u64) -> Option<usize> {
        self.pending_txs.get(&tx).map(|p| p.edits)
    }

    // -----------------------------------------------------------------
    // Fleet UPDATE / revert — the host-driven half of a transaction's
    // canary rollout. `fleet_update` applies a host-compiled program and
    // parks a checkpoint; the host later calls `fleet_promote` (drop the
    // checkpoint) or `fleet_revert` (restore it, state intact).
    // -----------------------------------------------------------------

    /// Apply a host-compiled program as a Fig. 12 UPDATE, parking a
    /// pre-transaction checkpoint for the transaction's promote/revert
    /// decision. The caller vouches that `program` is the compilation of
    /// `new_source` and passed the typechecker (the host compiled it
    /// once for the whole fleet); `base_source` is the source version the
    /// transaction was opened against — a session that has since edited
    /// away from it reports [`FleetUpdateOutcome::Diverged`] and is left
    /// untouched.
    ///
    /// Unlike [`LiveSession::edit_source`], an immediately-faulting
    /// update is **not** auto-quarantined here: the session keeps
    /// running the new program degraded (banner up, last good view) and
    /// reports `faulted: true` — whether one canary fault rolls the
    /// whole fleet's transaction back is the host's call, not the
    /// session's. Fleet updates do not touch the undo/redo history:
    /// they are deploys, not local edits.
    pub fn fleet_update(
        &mut self,
        tx: u64,
        base_source: &str,
        new_source: &str,
        program: Arc<Program>,
    ) -> FleetUpdateOutcome {
        if self.fleet_checkpoint.is_some() {
            return FleetUpdateOutcome::Busy;
        }
        if self.source != base_source {
            return FleetUpdateOutcome::Diverged;
        }
        // UPDATE requires a drained queue; settling also renders, so the
        // checkpoint below is the freshest good pre-transaction state.
        self.refresh();
        let checkpoint = FleetCheckpoint {
            tx,
            system: self.system.clone(),
            source: self.source.clone(),
            faults: self.faults.clone(),
            undo_stack: self.undo_stack.clone(),
            redo_stack: self.redo_stack.clone(),
            updates_applied: self.updates_applied,
            updates_rejected: self.updates_rejected,
            pending_txs: self.pending_txs.clone(),
            next_tx: self.next_tx,
            journal: Vec::new(),
            journal_overflow: false,
        };
        if let Err(e) = self.system.update_shared(program) {
            return FleetUpdateOutcome::Failed(e.to_string());
        }
        if let Some(memo) = self.memo.as_mut() {
            memo.on_update(self.system.program(), self.system.version());
        }
        self.source = new_source.to_string();
        self.updates_applied += 1;
        let faults_before = self.faults.total();
        self.refresh();
        let faulted = self.faults.total() > faults_before;
        self.fleet_checkpoint = Some(checkpoint);
        if let Some(metrics) = &self.metrics {
            metrics.record_fleet_update();
        }
        FleetUpdateOutcome::Applied { faulted }
    }

    /// Roll a fleet UPDATE back: restore the parked checkpoint — system,
    /// source, fault log, history stacks, edit books, open solo
    /// transactions — then re-apply the journal of client commands the
    /// session answered while the canary was live, so the session ends
    /// byte-identical to a solo replay of its full command history under
    /// the old program. Returns `false` (session untouched) if no
    /// checkpoint for `tx` is pending.
    pub fn fleet_revert(&mut self, tx: u64) -> bool {
        match &self.fleet_checkpoint {
            Some(checkpoint) if checkpoint.tx == tx => {}
            _ => return false,
        }
        let Some(checkpoint) = self.fleet_checkpoint.take() else {
            return false;
        };
        self.system = checkpoint.system;
        self.source = checkpoint.source;
        // The probe cache may be keyed to the reverted version.
        self.examples.invalidate();
        self.faults = checkpoint.faults;
        self.undo_stack = checkpoint.undo_stack;
        self.redo_stack = checkpoint.redo_stack;
        self.updates_applied = checkpoint.updates_applied;
        self.updates_rejected = checkpoint.updates_rejected;
        self.pending_txs = checkpoint.pending_txs;
        self.next_tx = checkpoint.next_tx;
        if let Some(memo) = self.memo.as_mut() {
            // The cache holds entries keyed to the reverted version;
            // rebuild it against the restored program.
            *memo = MemoCache::new(self.system.program());
        }
        // The view memo is display-generation-keyed and the restored
        // system's generation rolls *backward* — a stale pipeline would
        // serve the canary frame for a restored generation. Rebuild it.
        let mut pipeline = FramePipeline::new();
        if self.metrics.is_some() {
            pipeline.set_clock(Arc::clone(&self.clock));
        }
        self.pipeline = pipeline;
        self.refresh();
        // Replay the mid-canary traffic against the restored program.
        // The checkpoint is `None` now, so nothing re-journals.
        if !checkpoint.journal_overflow {
            for command in checkpoint.journal {
                let _ = self.apply(command);
            }
        }
        if let Some(metrics) = &self.metrics {
            metrics.record_fleet_revert();
        }
        true
    }

    /// Promote a fleet UPDATE: the transaction's observation window
    /// closed clean, so drop the parked checkpoint (and its journal) —
    /// the new program is this session's baseline now. Returns `false`
    /// if no checkpoint for `tx` is pending.
    pub fn fleet_promote(&mut self, tx: u64) -> bool {
        match &self.fleet_checkpoint {
            Some(checkpoint) if checkpoint.tx == tx => {
                self.fleet_checkpoint = None;
                if let Some(metrics) = &self.metrics {
                    metrics.record_fleet_promote();
                }
                true
            }
            _ => false,
        }
    }

    /// The transaction id of the pending fleet checkpoint, if any.
    pub fn fleet_pending(&self) -> Option<u64> {
        self.fleet_checkpoint.as_ref().map(|c| c.tx)
    }

    /// Journal a client command while a fleet checkpoint is pending (the
    /// revert path replays the journal). Bounded: past
    /// `FLEET_JOURNAL_CAPACITY` the journal stops recording and a revert
    /// restores the bare checkpoint without replay.
    pub(crate) fn journal_for_fleet(&mut self, command: &SessionCommand) {
        if let Some(checkpoint) = self.fleet_checkpoint.as_mut() {
            if checkpoint.journal.len() >= FLEET_JOURNAL_CAPACITY {
                checkpoint.journal_overflow = true;
            } else {
                checkpoint.journal.push(command.clone());
            }
        }
    }

    /// The current display's box tree (refreshing first), or `None` if
    /// the session has no renderable view at all (its only render ever
    /// attempted faulted — there is no last good tree to fall back to).
    ///
    /// The tree comes back as a shared [`Arc`] handle: a host can fan
    /// one frame out to many observers with refcount bumps, no copying.
    pub fn display_tree(&mut self) -> Option<Arc<BoxNode>> {
        self.refresh();
        self.system.display().content_shared().cloned()
    }

    /// Render the current display as text — the live view. Total: a
    /// faulting program yields the last good view; a session with no
    /// good view at all yields a placeholder naming the fault.
    pub fn live_view(&mut self) -> String {
        let eval_start = self.clock.now_us();
        let compile_before = self.system.vm_stats().compile_us;
        self.refresh();
        let eval_us = self.clock.now_us().saturating_sub(eval_start);
        let compile_us = self
            .system
            .vm_stats()
            .compile_us
            .saturating_sub(compile_before);
        let generation = self.system.display_generation();
        match self.system.display().content() {
            // The pipeline reuses everything the display left unchanged:
            // an identical generation returns the memoized string; a new
            // tree pays incremental layout + damage-driven repaint only.
            Some(root) => {
                let frames_before = self.pipeline.stats().frames;
                let text = self.pipeline.render(generation, root);
                if self.pipeline.stats().frames > frames_before {
                    // A frame was actually rendered (not a view-memo
                    // hit): stamp the settle time and feed the stage
                    // timings into the histograms.
                    self.last_eval_us = eval_us;
                    self.last_compile_us = compile_us;
                    if let Some(metrics) = &self.metrics {
                        metrics.record_frame(&self.frame_stats());
                    }
                }
                text
            }
            None => match self.faults.latest() {
                Some(fault) => format!("(no view: {fault})\n"),
                None => "(no view)\n".to_string(),
            },
        }
    }

    /// Tap the screen at a point (hit-tested), then refresh.
    /// Returns whether a tappable box was hit. A faulting tap handler
    /// does not error: its event is dropped, the model kept, the fault
    /// logged.
    ///
    /// # Errors
    ///
    /// [`SessionError::Action`] if the tap cannot be delivered.
    pub fn tap_at(&mut self, x: i32, y: i32) -> Result<bool, SessionError> {
        self.refresh();
        let hit =
            alive_ui::tap_at(&mut self.system, Point::new(x, y)).map_err(SessionError::Action)?;
        self.refresh();
        Ok(hit)
    }

    /// Tap a box by its path in the box tree, then refresh. A faulting
    /// handler drops its event with the model kept (fault logged).
    ///
    /// # Errors
    ///
    /// [`SessionError::Action`] if the path or handler is missing.
    pub fn tap_path(&mut self, path: &[usize]) -> Result<(), SessionError> {
        self.refresh();
        self.system.tap(path).map_err(SessionError::Action)?;
        self.refresh();
        Ok(())
    }

    /// Press the back button, then refresh.
    ///
    /// At the root page this is a typed error, not a pop: popping the
    /// last page would empty the stack and the STARTUP transition would
    /// re-run `init` from scratch — a hidden restart, which is exactly
    /// what a live session promises never to do.
    ///
    /// # Errors
    ///
    /// [`SessionError::Action`] ([`ActionError::NoPageToPop`]) at the
    /// root page.
    pub fn back(&mut self) -> Result<(), SessionError> {
        if self.system.page_stack().len() <= 1 {
            return Err(SessionError::Action(ActionError::NoPageToPop));
        }
        self.system.back();
        self.refresh();
        Ok(())
    }

    /// Edit the text of the box at `path` (fires its `onedit` handler),
    /// then refresh. A faulting handler drops its event with the model
    /// kept (fault logged).
    ///
    /// # Errors
    ///
    /// [`SessionError::Action`] if the box has no edit handler.
    pub fn edit_box(&mut self, path: &[usize], text: &str) -> Result<(), SessionError> {
        self.refresh();
        self.system
            .edit_box(path, text)
            .map_err(SessionError::Action)?;
        self.refresh();
        Ok(())
    }
}

/// Errors surfaced by [`LiveSession`] entry points. Runtime faults are
/// *not* errors — they are contained and logged (see [`FaultLog`]).
#[derive(Debug)]
pub enum SessionError {
    /// The initial program did not compile.
    Compile(Diagnostics),
    /// A user action could not be delivered.
    Action(ActionError),
    /// Text edits were malformed.
    Edit(EditError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Compile(ds) => write!(f, "program does not compile:\n{ds}"),
            SessionError::Action(e) => write!(f, "action failed: {e}"),
            SessionError::Edit(e) => write!(f, "bad text edit: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::Value;

    const APP: &str = r#"
global count : number = 0
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 10; }
        }
    }
}
"#;

    #[test]
    fn session_starts_and_renders() {
        let mut s = LiveSession::new(APP).expect("starts");
        assert_eq!(s.live_view(), "count is 1\n");
        assert!(s.system().is_stable());
        assert!(s.fault_log().is_empty());
        assert_eq!(s.fault_banner(), None);
    }

    #[test]
    fn live_edit_keeps_model_state() {
        let mut s = LiveSession::new(APP).expect("starts");
        s.tap_path(&[0]).expect("tap");
        assert_eq!(s.live_view(), "count is 11\n");

        let outcome = s.edit_source(&APP.replace("count is ", "n = "));
        assert!(outcome.is_applied());
        // Model preserved across the code update; init did not re-run.
        assert_eq!(s.live_view(), "n = 11\n");
        assert_eq!(s.update_counts(), (1, 0));
    }

    #[test]
    fn broken_edit_is_rejected_and_old_code_runs() {
        let mut s = LiveSession::new(APP).expect("starts");
        // Mid-keystroke state: incomplete expression.
        let outcome = s.edit_source(&APP.replace("count + 10", "count + "));
        let EditOutcome::Rejected(diags) = outcome else {
            panic!("expected rejection");
        };
        assert!(diags.has_errors());
        assert_eq!(s.update_counts(), (0, 1));
        // Old program still runs, source unchanged.
        assert_eq!(s.live_view(), "count is 1\n");
        assert!(s.source().contains("count + 10"));
    }

    #[test]
    fn faulting_edit_is_quarantined_and_reverted() {
        let mut s = LiveSession::new(APP).expect("starts");
        s.tap_path(&[0]).expect("tap"); // count = 11
                                        // Type-correct, but the render diverges as soon as it runs.
        let diverging = APP.replace(
            "post \"count is \" ++ count;",
            "while true { count; } post \"never\";",
        );
        let outcome = s.edit_source(&diverging);
        let EditOutcome::Quarantined { fault, .. } = outcome else {
            panic!("expected quarantine, got {outcome:?}");
        };
        assert_eq!(fault.kind, alive_core::FaultKind::Render);
        // Auto-reverted: source and view are the pre-edit ones, the
        // model survived, and the books show a rejection.
        assert!(s.source().contains("post \"count is \""));
        assert_eq!(s.live_view(), "count is 11\n");
        assert_eq!(s.system().store().get("count"), Some(&Value::Number(11.0)));
        assert_eq!(s.update_counts(), (0, 1));
        assert_eq!(s.fault_log().len(), 1);
        // The session is fully alive: further edits and taps work.
        assert!(s.edit_source(&APP.replace("count is", "n =")).is_applied());
        s.tap_path(&[0]).expect("tap");
        assert_eq!(s.live_view(), "n = 21\n");
    }

    #[test]
    fn faulting_handler_drops_event_and_keeps_view() {
        let partial = APP.replace(
            "count := count + 10;",
            "count := count + 10; count := list.nth([1], 9);",
        );
        let mut s = LiveSession::new(&partial).expect("starts");
        assert_eq!(s.live_view(), "count is 1\n");
        // The tap handler faults: no session error, event dropped,
        // store rolled back, last good view still up (stale).
        s.tap_path(&[0]).expect("tap is delivered");
        assert_eq!(s.system().store().get("count"), Some(&Value::Number(1.0)));
        assert_eq!(s.live_view(), "count is 1\n");
        assert_eq!(s.fault_log().len(), 1);
        let banner = s.fault_banner().expect("fault logged");
        assert!(banner.contains("handler fault"), "{banner}");
        assert!(banner.contains("list.nth"), "{banner}");
        // Still interactive: tapping again faults again, alive still.
        s.tap_path(&[0]).expect("tap is delivered");
        assert_eq!(s.fault_log().len(), 2);
        assert_eq!(s.live_view(), "count is 1\n");
    }

    #[test]
    fn text_edits_apply_by_span() {
        let mut s = LiveSession::new(APP).expect("starts");
        let at = s.source().find("10").expect("found") as u32;
        let outcome = s
            .apply_text_edits(&[TextEdit::replace(
                alive_syntax::Span::new(at, at + 2),
                "100",
            )])
            .expect("edits apply");
        assert!(outcome.is_applied());
        s.tap_path(&[0]).expect("tap");
        assert_eq!(s.system().store().get("count"), Some(&Value::Number(101.0)));
    }

    #[test]
    fn memo_session_produces_identical_views() {
        let src = r#"
global items : list (string, number) = []
global sel : number = 0
page start() {
    init { items := web.listings(20); }
    render {
        boxed { post "selected " ++ sel; }
        foreach entry in items {
            boxed {
                post entry.1 ++ " $" ++ entry.2;
                on tap { sel := sel + 1; }
            }
        }
    }
}
"#;
        let mut plain = LiveSession::new(src).expect("starts");
        let mut memo = LiveSession::with_memo(src).expect("starts");
        assert_eq!(plain.live_view(), memo.live_view());
        for _ in 0..3 {
            plain.tap_path(&[1]).expect("tap");
            memo.tap_path(&[1]).expect("tap");
            assert_eq!(plain.live_view(), memo.live_view());
        }
        let stats = memo.memo_stats().expect("enabled");
        assert!(stats.hits > 0, "listing rows should be reused: {stats:?}");
    }

    #[test]
    fn undo_redo_are_update_transitions() {
        let mut s = LiveSession::new(APP).expect("starts");
        s.tap_path(&[0]).expect("tap"); // count = 11
        assert_eq!(s.undo_depth(), 0);
        assert!(!s.undo().is_applied(), "nothing to undo yet");

        let v1 = APP.replace("count is", "n =");
        let v2 = APP.replace("count is", "total:");
        assert!(s.edit_source(&v1).is_applied());
        assert!(s.edit_source(&v2).is_applied());
        assert_eq!(s.undo_depth(), 2);
        assert_eq!(s.live_view(), "total: 11\n");

        // Undo restores the previous code; the model stays at 11
        // (undo is just another UPDATE, not time travel).
        assert_eq!(s.undo(), UndoOutcome::Applied);
        assert_eq!(s.live_view(), "n = 11\n");
        assert_eq!(s.undo(), UndoOutcome::Applied);
        assert_eq!(s.live_view(), "count is 11\n");
        assert_eq!(s.undo(), UndoOutcome::NothingToUndo, "stack exhausted");

        // Redo walks forward again.
        assert_eq!(s.redo(), UndoOutcome::Applied);
        assert_eq!(s.live_view(), "n = 11\n");
        // A fresh edit clears the redo stack.
        let v3 = s.source().replace("n =", "N:");
        assert!(s.edit_source(&v3).is_applied());
        assert_eq!(s.redo(), UndoOutcome::NothingToUndo);
    }

    #[test]
    fn frame_stats_show_cross_frame_reuse() {
        let src = r#"
global sel : number = 0
global items : list (string, number) = []
page start() {
    init { items := web.listings(12); }
    render {
        boxed { post "selected " ++ sel; }
        foreach entry in items {
            boxed { post entry.1; on tap { sel := sel + 1; } }
        }
    }
}
"#;
        let mut s = LiveSession::with_memo(src).expect("starts");
        let before = s.live_view();
        // A repeated read of the unchanged display is a view-memo hit.
        let again = s.live_view();
        assert_eq!(before, again);
        assert!(s.frame_stats().view_hits >= 1, "{:?}", s.frame_stats());

        // Steady state: a tap changes one header row; the listing rows
        // are memo splices, pointer-identical across frames, so layout
        // skips them and paint touches only the damaged cells.
        s.tap_path(&[1]).expect("tap");
        let view = s.live_view();
        assert!(view.starts_with("selected 1"), "{view}");
        let stats = s.frame_stats();
        assert!(
            stats.nodes_reused > stats.nodes_measured,
            "most of the tree is reused: {stats:?}"
        );
        assert!(stats.partial, "steady-state frames repaint partially");
        assert!(
            stats.cells_repainted < stats.cells_total / 2,
            "damage covers a fraction of the screen: {stats:?}"
        );
        assert!(
            stats.eval_hits > 0,
            "memo splices feed the reuse: {stats:?}"
        );
    }

    #[test]
    fn pipeline_view_is_byte_identical_to_from_scratch() {
        let mut s = LiveSession::with_memo(APP).expect("starts");
        for i in 0..4 {
            if i > 0 {
                s.tap_path(&[0]).expect("tap");
            }
            let view = s.live_view();
            let oracle = {
                let root = s.display_tree().expect("has a view");
                alive_ui::render_to_text(&alive_ui::layout(&root))
            };
            assert_eq!(view, oracle, "frame {i} diverged");
        }
    }

    #[test]
    fn memo_overflow_tail_renders_through_the_cache() {
        // The init cascade pushes forever; containment must drop the
        // queue and the *tail* render must still go through the memo
        // hook rather than falling off the fast path.
        let loopy = r#"
page start() {
    init { push start(); }
    render { boxed { post "landed"; } }
}
"#;
        let config = SystemConfig {
            max_transitions: 40,
            ..SystemConfig::default()
        };
        let mut s = LiveSession::with_options(loopy, config, true).expect("starts");
        assert!(
            s.fault_log()
                .iter()
                .any(|f| f.kind == alive_core::FaultKind::CascadeOverflow),
            "overflow was contained and logged"
        );
        // The machine settled: the containment tail rendered the page…
        assert_eq!(s.live_view(), "landed\n");
        assert!(s.system().is_stable());
        // …and that render went through the cache hook.
        let memo = s.memo_stats().expect("memo session");
        assert!(
            memo.hits + memo.misses + memo.uncacheable > 0,
            "tail render must hit the RenderHook: {memo:?}"
        );
    }

    #[test]
    fn memo_cache_cleared_on_update() {
        let mut s = LiveSession::with_memo(APP).expect("starts");
        s.tap_path(&[0]).expect("tap");
        let outcome = s.edit_source(&APP.replace("count is", "total:"));
        assert!(outcome.is_applied());
        assert_eq!(s.live_view(), "total: 11\n");
    }
}
