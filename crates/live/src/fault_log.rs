//! The session fault log: a bounded record of contained faults.
//!
//! Fault containment (see `alive_core::fault`) turns runtime failures
//! into rolled-back transitions; the *log* is how a live session tells
//! the programmer about them. It is bounded so that a fault-looping
//! program cannot grow the session without limit — old entries are
//! dropped, their count retained.

use alive_core::{Fault, FaultKind};
use std::collections::VecDeque;
use std::fmt;

/// How many faults the log retains before dropping the oldest.
pub const FAULT_LOG_CAPACITY: usize = 32;

/// A bounded, append-only log of contained [`Fault`]s.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    entries: VecDeque<Fault>,
    dropped: u64,
    /// Running totals per [`FaultKind`], never evicted — the bounded
    /// window forgets *entries*, not *counts*, so metrics can reconcile
    /// against the log exactly (see `crates/obs`'s invariant suite).
    totals_by_kind: [u64; 4],
}

fn kind_index(kind: FaultKind) -> usize {
    match kind {
        FaultKind::Init => 0,
        FaultKind::Handler => 1,
        FaultKind::Render => 2,
        FaultKind::CascadeOverflow => 3,
    }
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Append a fault, evicting the oldest entry beyond
    /// [`FAULT_LOG_CAPACITY`].
    pub fn record(&mut self, fault: Fault) {
        if self.entries.len() == FAULT_LOG_CAPACITY {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.totals_by_kind[kind_index(fault.kind)] += 1;
        self.entries.push_back(fault);
    }

    /// The most recent fault, if any.
    pub fn latest(&self) -> Option<&Fault> {
        self.entries.back()
    }

    /// Retained faults, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Fault> {
        self.entries.iter()
    }

    /// Number of retained faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether any fault has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Total faults ever recorded, including evicted ones.
    pub fn total(&self) -> u64 {
        self.dropped + self.entries.len() as u64
    }

    /// Total faults of `kind` ever recorded, including evicted ones.
    pub fn total_by_kind(&self, kind: FaultKind) -> u64 {
        self.totals_by_kind[kind_index(kind)]
    }

    /// A one-line banner for display over the last good view, or `None`
    /// when the log is empty.
    ///
    /// ```text
    /// ⚠ handler fault in page `start`: injected fault in `list.nth` (12/50000000 fuel, code v0) [3 faults total]
    /// ```
    pub fn banner(&self) -> Option<String> {
        let latest = self.latest()?;
        let total = self.total();
        if total == 1 {
            Some(format!("⚠ {latest}"))
        } else {
            Some(format!("⚠ {latest} [{total} faults total]"))
        }
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(f, "({} earlier faults dropped)", self.dropped)?;
        }
        for fault in &self.entries {
            writeln!(f, "{fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::{FaultKind, RuntimeError};

    fn fault(n: u64) -> Fault {
        Fault {
            kind: FaultKind::Handler,
            page: None,
            error: RuntimeError::FuelExhausted,
            fuel_spent: n,
            fuel_limit: n,
            version: 0,
        }
    }

    #[test]
    fn log_is_bounded_but_counts_everything() {
        let mut log = FaultLog::new();
        assert!(log.is_empty());
        assert_eq!(log.banner(), None);
        for i in 0..(FAULT_LOG_CAPACITY as u64 + 10) {
            log.record(fault(i));
        }
        assert_eq!(log.len(), FAULT_LOG_CAPACITY);
        assert_eq!(log.total(), FAULT_LOG_CAPACITY as u64 + 10);
        // Oldest entries were evicted; the newest survives.
        assert_eq!(
            log.latest().map(|f| f.fuel_spent),
            Some(FAULT_LOG_CAPACITY as u64 + 9)
        );
        assert_eq!(
            log.iter().next().map(|f| f.fuel_spent),
            Some(10),
            "oldest retained entry"
        );
        assert!(!log.is_empty(), "a log with evictions is not empty");
        assert_eq!(
            log.total_by_kind(FaultKind::Handler),
            log.total(),
            "per-kind totals survive eviction"
        );
        assert_eq!(log.total_by_kind(FaultKind::Render), 0);
        let banner = log.banner().expect("has faults");
        assert!(banner.starts_with('⚠'), "{banner}");
        assert!(banner.contains("faults total"), "{banner}");
        assert!(log.to_string().contains("earlier faults dropped"));
    }
}
