//! Session traces: record a live programming session — interactions
//! *and* code edits — and replay it deterministically.
//!
//! The paper's §1 discusses trace-based approaches to liveness and
//! §4's model makes determinism easy to state: given the same initial
//! source and the same event sequence, the system reaches the same
//! state. Traces turn that property into a tool — reproducible bug
//! reports, golden-session tests, and the benches' scripted users.
//!
//! Traces serialize to a plain-text format (no external dependencies):
//!
//! ```text
//! #alive-trace v1
//! source 123
//! <123 bytes of source>
//! tap 1 0
//! back
//! editbox 2 0 -- 15
//! editsource 140
//! <140 bytes of source>
//! ```

use crate::session::{EditOutcome, LiveSession, SessionError};
use std::fmt;

/// One recorded step of a session.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Tap the box at a path.
    Tap(Vec<usize>),
    /// Press back.
    Back,
    /// Edit the text of the box at a path.
    EditBox(Vec<usize>, String),
    /// Replace the whole program source.
    EditSource(String),
}

/// A recorded session: initial source plus events in order.
///
/// ```
/// use alive_live::{RecordingSession, SessionTrace};
///
/// let src = "global n : number = 0
///     page start() {
///         render { boxed { post n; on tap { n := n + 1; } } }
///     }";
/// let mut recording = RecordingSession::new(src)?;
/// recording.tap_path(&[0])?;
/// recording.tap_path(&[0])?;
/// let (_, trace) = recording.into_parts();
///
/// // The serialized trace replays deterministically.
/// let parsed = SessionTrace::parse(&trace.serialize())?;
/// let mut replayed = parsed.replay()?;
/// assert_eq!(replayed.live_view(), "2\n");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTrace {
    /// The program the session started from.
    pub initial_source: String,
    /// The recorded events.
    pub events: Vec<TraceEvent>,
}

impl SessionTrace {
    /// A new empty trace for a program.
    pub fn new(initial_source: impl Into<String>) -> Self {
        SessionTrace {
            initial_source: initial_source.into(),
            events: Vec::new(),
        }
    }

    /// Replay the trace from scratch, returning the resulting session.
    /// Rejected source edits during replay are fine (they were rejected
    /// when recorded, too); failed interactions abort the replay.
    ///
    /// # Errors
    ///
    /// [`SessionError`] if the initial program does not compile or an
    /// interaction no longer applies.
    pub fn replay(&self) -> Result<LiveSession, SessionError> {
        let mut session = LiveSession::new(&self.initial_source)?;
        for event in &self.events {
            match event {
                TraceEvent::Tap(path) => session.tap_path(path)?,
                TraceEvent::Back => session.back()?,
                TraceEvent::EditBox(path, text) => session.edit_box(path, text)?,
                TraceEvent::EditSource(src) => {
                    // Rejection or quarantine during replay is fine: it
                    // happened identically when recorded.
                    session.edit_source(src);
                }
            }
        }
        Ok(session)
    }

    /// Replay only the first `steps` events — time travel: inspect the
    /// session as it was after any prefix of the recorded history.
    /// `steps` beyond the trace length replays everything.
    ///
    /// # Errors
    ///
    /// See [`SessionTrace::replay`].
    pub fn replay_prefix(&self, steps: usize) -> Result<LiveSession, SessionError> {
        let prefix = SessionTrace {
            initial_source: self.initial_source.clone(),
            events: self.events.iter().take(steps).cloned().collect(),
        };
        prefix.replay()
    }

    /// Serialize to the plain-text trace format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("#alive-trace v1\n");
        out.push_str(&format!("source {}\n", self.initial_source.len()));
        out.push_str(&self.initial_source);
        out.push('\n');
        for event in &self.events {
            match event {
                TraceEvent::Tap(path) => {
                    out.push_str("tap");
                    for p in path {
                        out.push_str(&format!(" {p}"));
                    }
                    out.push('\n');
                }
                TraceEvent::Back => out.push_str("back\n"),
                TraceEvent::EditBox(path, text) => {
                    out.push_str("editbox");
                    for p in path {
                        out.push_str(&format!(" {p}"));
                    }
                    out.push_str(" -- ");
                    out.push_str(&text.replace('\n', "\\n"));
                    out.push('\n');
                }
                TraceEvent::EditSource(src) => {
                    out.push_str(&format!("editsource {}\n", src.len()));
                    out.push_str(src);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parse the plain-text trace format.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] describing the malformed line.
    pub fn parse(text: &str) -> Result<SessionTrace, TraceParseError> {
        let mut rest = text;
        let mut line_no = 0usize;
        let mut next_line = |rest: &mut &str| -> Option<String> {
            if rest.is_empty() {
                return None;
            }
            line_no += 1;
            match rest.find('\n') {
                Some(i) => {
                    let line = rest[..i].to_string();
                    *rest = &rest[i + 1..];
                    Some(line)
                }
                None => {
                    let line = rest.to_string();
                    *rest = "";
                    Some(line)
                }
            }
        };
        let take_block = |rest: &mut &str, len: usize| -> Result<String, TraceParseError> {
            if rest.len() < len {
                return Err(TraceParseError::new(0, "length-prefixed block truncated"));
            }
            let block = rest[..len].to_string();
            *rest = &rest[len..];
            // Consume the trailing newline after the block.
            if let Some(stripped) = rest.strip_prefix('\n') {
                *rest = stripped;
            }
            Ok(block)
        };

        let header = next_line(&mut rest).ok_or_else(|| TraceParseError::new(1, "empty trace"))?;
        if header.trim() != "#alive-trace v1" {
            return Err(TraceParseError::new(1, "missing `#alive-trace v1` header"));
        }
        let source_line = next_line(&mut rest)
            .ok_or_else(|| TraceParseError::new(2, "missing `source <len>` line"))?;
        let len: usize = source_line
            .strip_prefix("source ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| TraceParseError::new(2, "malformed `source <len>` line"))?;
        let initial_source = take_block(&mut rest, len)?;

        let mut events = Vec::new();
        let mut ln = 2usize;
        while let Some(line) = next_line(&mut rest) {
            ln += 1;
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(args) = line.strip_prefix("tap") {
                let path = parse_path(args)
                    .ok_or_else(|| TraceParseError::new(ln, "malformed tap path"))?;
                events.push(TraceEvent::Tap(path));
            } else if line == "back" {
                events.push(TraceEvent::Back);
            } else if let Some(args) = line.strip_prefix("editbox") {
                let (path_part, text) = args
                    .split_once(" -- ")
                    .ok_or_else(|| TraceParseError::new(ln, "editbox needs ` -- <text>`"))?;
                let path = parse_path(path_part)
                    .ok_or_else(|| TraceParseError::new(ln, "malformed editbox path"))?;
                events.push(TraceEvent::EditBox(path, text.replace("\\n", "\n")));
            } else if let Some(arg) = line.strip_prefix("editsource ") {
                let len: usize = arg
                    .trim()
                    .parse()
                    .map_err(|_| TraceParseError::new(ln, "malformed editsource length"))?;
                let src = take_block(&mut rest, len)?;
                events.push(TraceEvent::EditSource(src));
            } else {
                return Err(TraceParseError::new(ln, format!("unknown event `{line}`")));
            }
        }
        Ok(SessionTrace {
            initial_source,
            events,
        })
    }
}

fn parse_path(args: &str) -> Option<Vec<usize>> {
    args.split_whitespace()
        .map(|p| p.parse::<usize>().ok())
        .collect()
}

/// A malformed trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line where parsing failed (0 if unknown).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl TraceParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TraceParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

/// A live session that records everything it is asked to do.
#[derive(Debug)]
pub struct RecordingSession {
    session: LiveSession,
    trace: SessionTrace,
}

impl RecordingSession {
    /// Start a recording session.
    ///
    /// # Errors
    ///
    /// See [`LiveSession::new`].
    pub fn new(source: &str) -> Result<Self, SessionError> {
        Ok(RecordingSession {
            session: LiveSession::new(source)?,
            trace: SessionTrace::new(source),
        })
    }

    /// Start a recording session whose metrics resolve from `registry`
    /// (default config, no memo) — see [`LiveSession::observed`].
    ///
    /// # Errors
    ///
    /// See [`LiveSession::new`].
    pub fn observed(source: &str, registry: &alive_obs::Registry) -> Result<Self, SessionError> {
        Ok(RecordingSession {
            session: LiveSession::observed(
                source,
                alive_core::system::SystemConfig::default(),
                false,
                registry,
            )?,
            trace: SessionTrace::new(source),
        })
    }

    /// The underlying session (read-only; mutations must go through the
    /// recording wrappers or they would escape the trace).
    pub fn session(&self) -> &LiveSession {
        &self.session
    }

    /// Mutable access *for view rendering only* (e.g. the Figure 2
    /// split view needs `&mut` to settle pending renders). Rendering is
    /// not a trace event; do not use this to mutate the model.
    pub fn session_view_mut(&mut self) -> &mut LiveSession {
        &mut self.session
    }

    /// The trace so far.
    pub fn trace(&self) -> &SessionTrace {
        &self.trace
    }

    /// Finish recording and return both parts.
    pub fn into_parts(self) -> (LiveSession, SessionTrace) {
        (self.session, self.trace)
    }

    /// Recorded [`LiveSession::tap_path`].
    ///
    /// # Errors
    ///
    /// See [`LiveSession::tap_path`].
    pub fn tap_path(&mut self, path: &[usize]) -> Result<(), SessionError> {
        self.session.tap_path(path)?;
        self.trace.events.push(TraceEvent::Tap(path.to_vec()));
        Ok(())
    }

    /// Recorded [`LiveSession::back`].
    ///
    /// # Errors
    ///
    /// See [`LiveSession::back`].
    pub fn back(&mut self) -> Result<(), SessionError> {
        self.session.back()?;
        self.trace.events.push(TraceEvent::Back);
        Ok(())
    }

    /// Recorded [`LiveSession::edit_box`].
    ///
    /// # Errors
    ///
    /// See [`LiveSession::edit_box`].
    pub fn edit_box(&mut self, path: &[usize], text: &str) -> Result<(), SessionError> {
        self.session.edit_box(path, text)?;
        self.trace
            .events
            .push(TraceEvent::EditBox(path.to_vec(), text.to_string()));
        Ok(())
    }

    /// Recorded [`LiveSession::edit_source`]. Never fails; rejected and
    /// quarantined edits are recorded too (replay reproduces them).
    pub fn edit_source(&mut self, new_source: &str) -> EditOutcome {
        let outcome = self.session.edit_source(new_source);
        self.trace
            .events
            .push(TraceEvent::EditSource(new_source.to_string()));
        outcome
    }

    /// The live view of the underlying session (total; see
    /// [`LiveSession::live_view`]).
    pub fn live_view(&mut self) -> String {
        self.session.live_view()
    }

    /// Apply a protocol command, recording the replayable ones in the
    /// trace (taps, back, box edits, source edits — the same event set
    /// [`SessionTrace`] serializes; undo/redo are recorded as the
    /// source edit they perform, queries are not recorded).
    pub fn apply(
        &mut self,
        command: crate::protocol::SessionCommand,
    ) -> Vec<crate::protocol::SessionEffect> {
        use crate::protocol::{SessionCommand, SessionEffect};
        match &command {
            SessionCommand::TapPath(path) => {
                self.trace.events.push(TraceEvent::Tap(path.clone()));
            }
            SessionCommand::Back => self.trace.events.push(TraceEvent::Back),
            SessionCommand::EditBox { path, text } => self
                .trace
                .events
                .push(TraceEvent::EditBox(path.clone(), text.clone())),
            SessionCommand::EditSource(src) => {
                self.trace.events.push(TraceEvent::EditSource(src.clone()));
            }
            _ => {}
        }
        let effects = self.session.apply(command);
        // Undo/redo mutate the source like an edit; record the source
        // they landed on so a replay reproduces the same history.
        if let Some(SessionEffect::Undo { outcome, .. }) = effects.first() {
            if outcome.is_applied() {
                self.trace
                    .events
                    .push(TraceEvent::EditSource(self.session.source().to_string()));
            }
        }
        effects
    }

    /// Restore a model snapshot (see [`alive_core::persist`]). Snapshot
    /// restoration is its own persistence channel and is *not* recorded
    /// in the trace.
    ///
    /// # Errors
    ///
    /// [`alive_core::persist::PersistError`] on malformed snapshots.
    pub fn restore_snapshot(
        &mut self,
        snapshot: &str,
    ) -> Result<alive_core::persist::LoadReport, alive_core::persist::PersistError> {
        self.session.system_mut().restore(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_apps::mortgage;

    fn record_mortgage_session() -> (LiveSession, SessionTrace) {
        let src = mortgage::mortgage_src(4);
        let mut rec = RecordingSession::new(&src).expect("starts");
        rec.tap_path(&[1, 1]).expect("open detail");
        rec.edit_box(&[2, 0], "15").expect("edit term");
        assert!(rec
            .edit_source(&mortgage::apply_improvement_i2(&src))
            .is_applied());
        rec.back().expect("back");
        rec.into_parts()
    }

    #[test]
    fn replay_reproduces_the_session_exactly() {
        let (mut original, trace) = record_mortgage_session();
        let mut replayed = trace.replay().expect("replays");
        assert_eq!(original.live_view(), replayed.live_view());
        assert_eq!(original.system().store(), replayed.system().store());
        assert_eq!(original.source(), replayed.source());
    }

    #[test]
    fn replay_prefix_time_travels() {
        let (_, trace) = record_mortgage_session();
        // Step 0: fresh session on the start page.
        let mut t0 = trace.replay_prefix(0).expect("replays");
        assert_eq!(t0.system().current_page().map(|(n, _)| n), Some("start"));
        // Step 1: after the tap, on the detail page.
        let mut t1 = trace.replay_prefix(1).expect("replays");
        assert_eq!(t1.system().current_page().map(|(n, _)| n), Some("detail"));
        // Step 2: term edited.
        let t2 = trace.replay_prefix(2).expect("replays");
        assert_eq!(
            t2.system().store().get("term"),
            Some(&alive_core::Value::Number(15.0))
        );
        // Prefix beyond the end == full replay.
        let mut full = trace.replay_prefix(999).expect("replays");
        let mut exact = trace.replay().expect("replays");
        assert_eq!(full.live_view(), exact.live_view());
        let _ = (t0.live_view(), t1.live_view());
    }

    #[test]
    fn serialization_roundtrips() {
        let (_, trace) = record_mortgage_session();
        let text = trace.serialize();
        let parsed = SessionTrace::parse(&text).expect("parses");
        assert_eq!(parsed, trace);
        // And the parsed trace still replays.
        parsed.replay().expect("replays");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SessionTrace::parse("").is_err());
        assert!(SessionTrace::parse("#alive-trace v1\nnonsense").is_err());
        assert!(SessionTrace::parse("#alive-trace v1\nsource 99\nshort").is_err());
        let err = SessionTrace::parse("#alive-trace v1\nsource 1\nx\nfly 1 2")
            .expect_err("unknown event");
        assert!(err.to_string().contains("unknown event"));
    }

    #[test]
    fn editbox_text_with_newlines_roundtrips() {
        let mut trace = SessionTrace::new("page start() { render { } }");
        trace
            .events
            .push(TraceEvent::EditBox(vec![0, 2], "line1\nline2".into()));
        let parsed = SessionTrace::parse(&trace.serialize()).expect("parses");
        assert_eq!(parsed, trace);
    }
}
