//! Bidirectional UI↔code navigation — the paper's Figure 2.
//!
//! > "If the user taps a box in the live view, the editor selects the
//! > boxed statement in the code view that created the UI element.
//! > Likewise, if the user selects a boxed statement in the code view,
//! > the corresponding box (or boxes) is selected in the live view."
//!
//! The mapping is exact because every box records the
//! [`BoxSourceId`] of the `boxed` statement that created it, and the
//! program records each statement's source span.

use alive_core::boxtree::BoxNode;
use alive_core::expr::BoxSourceId;
use alive_core::Program;
use alive_syntax::Span;

/// Box → code: the source span of the `boxed` statement that created
/// the box at `path` in the display.
pub fn span_for_box(program: &Program, display: &BoxNode, path: &[usize]) -> Option<Span> {
    let node = display.descendant(path)?;
    program.box_span(node.source?)
}

/// Code → box: all boxes in the display created by the `boxed`
/// statement whose span contains the cursor position. A statement
/// inside a loop yields many boxes, which are "collectively selected".
pub fn boxes_for_cursor(program: &Program, display: &BoxNode, cursor: u32) -> Vec<Vec<usize>> {
    match box_source_at(program, cursor) {
        Some(id) => display.find_by_source(id),
        None => Vec::new(),
    }
}

/// The innermost `boxed` statement whose source span contains the
/// cursor position.
pub fn box_source_at(program: &Program, cursor: u32) -> Option<BoxSourceId> {
    program
        .box_spans
        .iter()
        .enumerate()
        .filter(|(_, span)| span.contains_pos(cursor))
        .min_by_key(|(_, span)| span.len())
        .map(|(i, _)| BoxSourceId(i as u32))
}

/// All boxes created by a specific `boxed` statement.
pub fn boxes_for_source(display: &BoxNode, id: BoxSourceId) -> Vec<Vec<usize>> {
    display.find_by_source(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::compile;
    use alive_core::system::System;

    const SRC: &str = r#"page start() {
    render {
        boxed { post "header"; }
        for i in 0 .. 3 {
            boxed { post i; }
        }
    }
}"#;

    fn rendered() -> (Program, BoxNode) {
        let program = compile(SRC).expect("compiles");
        let mut system = System::new(program.clone());
        let root = system.rendered().expect("renders").clone();
        (program, root)
    }

    #[test]
    fn tap_box_selects_its_statement() {
        let (program, root) = rendered();
        let span = span_for_box(&program, &root, &[0]).expect("maps");
        assert_eq!(span.slice(SRC), r#"boxed { post "header"; }"#);
        // One of the loop-produced boxes maps to the loop's boxed stmt.
        let span2 = span_for_box(&program, &root, &[2]).expect("maps");
        assert_eq!(span2.slice(SRC), "boxed { post i; }");
    }

    #[test]
    fn cursor_in_loop_statement_selects_all_its_boxes() {
        let (program, root) = rendered();
        let cursor = SRC.find("post i").expect("found") as u32;
        let boxes = boxes_for_cursor(&program, &root, cursor);
        assert_eq!(boxes, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn cursor_in_header_selects_one_box() {
        let (program, root) = rendered();
        let cursor = SRC.find("header").expect("found") as u32;
        let boxes = boxes_for_cursor(&program, &root, cursor);
        assert_eq!(boxes, vec![vec![0]]);
    }

    #[test]
    fn cursor_outside_any_boxed_selects_nothing() {
        let (program, root) = rendered();
        // Position 0 is `page`, outside every boxed statement.
        assert!(boxes_for_cursor(&program, &root, 0).is_empty());
        assert_eq!(box_source_at(&program, 0), None);
    }

    #[test]
    fn implicit_root_box_has_no_span() {
        let (program, root) = rendered();
        assert_eq!(span_for_box(&program, &root, &[]), None);
    }

    #[test]
    fn nested_boxed_prefers_innermost() {
        let src = r#"page start() {
    render {
        boxed { boxed { post "inner"; } }
    }
}"#;
        let program = compile(src).expect("compiles");
        let cursor = src.find("inner").expect("found") as u32;
        let id = box_source_at(&program, cursor).expect("inside both");
        let span = program.box_span(id).expect("has span");
        assert_eq!(span.slice(src), r#"boxed { post "inner"; }"#);
    }
}
