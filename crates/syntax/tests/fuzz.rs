//! Fuzz-style property tests: the lexer and parser are total — they
//! never panic and always terminate, whatever bytes arrive. This is
//! what lets the live editor run them on every keystroke.

use alive_syntax::{lexer, parse_program, pretty_program, Diagnostics, IncrementalParser};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_is_total(src in ".*") {
        let mut diags = Diagnostics::new();
        let tokens = lexer::lex(&src, &mut diags);
        // Always Eof-terminated, spans in bounds and non-decreasing.
        prop_assert!(matches!(
            tokens.last().map(|t| &t.kind),
            Some(alive_syntax::token::TokenKind::Eof)
        ));
        let mut prev_start = 0u32;
        for t in &tokens {
            prop_assert!(t.span.end as usize <= src.len());
            prop_assert!(t.span.start >= prev_start);
            prev_start = t.span.start;
        }
    }

    #[test]
    fn parser_is_total(src in ".*") {
        let result = parse_program(&src);
        // Whatever happened, pretty-printing the (possibly partial)
        // program must not panic either.
        let _ = pretty_program(&result.program);
    }

    #[test]
    fn parser_is_total_on_codeish_input(
        src in r"(global|fun|page|boxed|post|if|\{|\}|\(|\)|;|:=|[a-z]+|[0-9]+| |\n){0,60}"
    ) {
        let result = parse_program(&src);
        let _ = pretty_program(&result.program);
    }

    /// The incremental parser agrees with the full parser on every
    /// input, including arbitrary garbage, across a sequence of edits
    /// sharing one cache.
    #[test]
    fn incremental_parse_equals_full_parse(
        sources in proptest::collection::vec(
            prop_oneof![
                ".*",
                r"(global [a-z]+ : number = [0-9]+\n|fun [a-z]+\(\) : number pure \{ [0-9]+ \}\n|page start\(\) \{ render \{ \} \}\n){0,5}",
            ],
            1..6,
        )
    ) {
        let mut inc = IncrementalParser::new();
        for src in &sources {
            let incremental = inc.parse(src);
            let full = parse_program(src);
            prop_assert_eq!(&incremental.program, &full.program);
            prop_assert_eq!(
                incremental.diagnostics.into_vec(),
                full.diagnostics.into_vec()
            );
        }
    }

    #[test]
    fn accepted_programs_pretty_roundtrip(
        names in proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 1..5),
    ) {
        // Generate a simple but valid program from identifier soup.
        let mut src = String::new();
        for (i, n) in names.iter().enumerate() {
            src.push_str(&format!("global g_{n}_{i} : number = {i}\n"));
        }
        src.push_str("page start() { render {\n");
        for (i, n) in names.iter().enumerate() {
            src.push_str(&format!("boxed {{ post g_{n}_{i}; }}\n"));
        }
        src.push_str("} }\n");
        let first = parse_program(&src);
        prop_assert!(first.is_ok(), "{}", first.diagnostics.render(&src));
        let printed = pretty_program(&first.program);
        let second = parse_program(&printed);
        prop_assert!(second.is_ok(), "{}", second.diagnostics.render(&printed));
        prop_assert_eq!(printed, pretty_program(&second.program));
    }
}
