//! Fuzz-style property tests: the lexer and parser are total — they
//! never panic and always terminate, whatever bytes arrive. This is
//! what lets the live editor run them on every keystroke.

use alive_syntax::{lexer, parse_program, pretty_program, Diagnostics, IncrementalParser};
use alive_testkit::{prop, prop_assert, prop_assert_eq, NoShrink, Rng};

fn lexer_total_on(src: &str) -> Result<(), String> {
    let mut diags = Diagnostics::new();
    let tokens = lexer::lex(src, &mut diags);
    // Always Eof-terminated, spans in bounds and non-decreasing.
    prop_assert!(matches!(
        tokens.last().map(|t| &t.kind),
        Some(alive_syntax::token::TokenKind::Eof)
    ));
    let mut prev_start = 0u32;
    for t in &tokens {
        prop_assert!(t.span.end as usize <= src.len());
        prop_assert!(t.span.start >= prev_start);
        prev_start = t.span.start;
    }
    Ok(())
}

#[test]
fn lexer_is_total() {
    // The historical shrunk regression (an unterminated string ending
    // in a backslash), replayed deterministically before random cases.
    lexer_total_on("\"\\").expect("regression stays fixed");
    prop::check(
        "lexer_is_total",
        prop::Config::with_cases(512),
        |rng| rng.any_string(80),
        |src: &String| lexer_total_on(src),
    );
}

#[test]
fn parser_is_total() {
    // Same historical regression through the whole parser.
    let _ = pretty_program(&parse_program("\"\\").program);
    prop::check(
        "parser_is_total",
        prop::Config::with_cases(512),
        |rng| rng.any_string(80),
        |src: &String| {
            let result = parse_program(src);
            // Whatever happened, pretty-printing the (possibly partial)
            // program must not panic either.
            let _ = pretty_program(&result.program);
            Ok(())
        },
    );
}

/// Code-shaped token soup: keywords, punctuation, identifiers, numbers.
fn codeish(rng: &mut Rng) -> String {
    const PIECES: &[&str] = &[
        "global", "fun", "page", "boxed", "post", "if", "{", "}", "(", ")", ";", ":=", " ", "\n",
    ];
    let n = rng.below(60);
    let mut out = String::new();
    for _ in 0..n {
        match rng.below(10) {
            0..=6 => out.push_str(rng.choose::<&str>(PIECES)),
            7 => out.push_str(&rng.string_in("abcdefghijklmnopqrstuvwxyz", 1, 6)),
            _ => out.push_str(&rng.string_in("0123456789", 1, 4)),
        }
    }
    out
}

#[test]
fn parser_is_total_on_codeish_input() {
    prop::check(
        "parser_is_total_on_codeish_input",
        prop::Config::with_cases(512),
        codeish,
        |src: &String| {
            let result = parse_program(src);
            let _ = pretty_program(&result.program);
            Ok(())
        },
    );
}

/// The incremental parser agrees with the full parser on every input,
/// including arbitrary garbage, across a sequence of edits sharing one
/// cache.
#[test]
fn incremental_parse_equals_full_parse() {
    fn item_soup(rng: &mut Rng) -> String {
        let mut out = String::new();
        for _ in 0..rng.below(6) {
            match rng.below(3) {
                0 => out.push_str(&format!(
                    "global {} : number = {}\n",
                    rng.string_in("abcdefgh", 1, 4),
                    rng.below(100)
                )),
                1 => out.push_str(&format!(
                    "fun {}() : number pure {{ {} }}\n",
                    rng.string_in("abcdefgh", 1, 4),
                    rng.below(100)
                )),
                _ => out.push_str("page start() { render { } }\n"),
            }
        }
        out
    }
    prop::check(
        "incremental_parse_equals_full_parse",
        prop::Config::with_cases(256),
        |rng| {
            let n = rng.gen_range(1..6);
            (0..n)
                .map(|_| {
                    if rng.gen_bool() {
                        rng.any_string(60)
                    } else {
                        item_soup(rng)
                    }
                })
                .collect::<Vec<String>>()
        },
        |sources: &Vec<String>| {
            let mut inc = IncrementalParser::new();
            for src in sources {
                let incremental = inc.parse(src);
                let full = parse_program(src);
                prop_assert_eq!(&incremental.program, &full.program);
                prop_assert_eq!(
                    incremental.diagnostics.into_vec(),
                    full.diagnostics.into_vec()
                );
            }
            Ok(())
        },
    );
}

#[test]
fn accepted_programs_pretty_roundtrip() {
    prop::check(
        "accepted_programs_pretty_roundtrip",
        prop::Config::with_cases(256),
        |rng| {
            let n = rng.gen_range(1..5);
            NoShrink(
                (0..n)
                    .map(|_| {
                        let head = rng.string_in("abcdefghijklmnopqrstuvwxyz", 1, 1);
                        let tail = rng.string_in("abcdefghijklmnopqrstuvwxyz0123456789_", 0, 8);
                        format!("{head}{tail}")
                    })
                    .collect::<Vec<String>>(),
            )
        },
        |names: &NoShrink<Vec<String>>| {
            // Generate a simple but valid program from identifier soup.
            let mut src = String::new();
            for (i, n) in names.0.iter().enumerate() {
                src.push_str(&format!("global g_{n}_{i} : number = {i}\n"));
            }
            src.push_str("page start() { render {\n");
            for (i, n) in names.0.iter().enumerate() {
                src.push_str(&format!("boxed {{ post g_{n}_{i}; }}\n"));
            }
            src.push_str("} }\n");
            let first = parse_program(&src);
            prop_assert!(first.is_ok(), "{}", first.diagnostics.render(&src));
            let printed = pretty_program(&first.program);
            let second = parse_program(&printed);
            prop_assert!(second.is_ok(), "{}", second.diagnostics.render(&printed));
            prop_assert_eq!(printed, pretty_program(&second.program));
            Ok(())
        },
    );
}
