//! Pretty-printer: formats an AST back to canonical source text.
//!
//! Used by direct manipulation (paper §3, "the code view is updated
//! automatically") when the environment synthesizes or rewrites
//! statements, and by tests as a round-trip oracle:
//! `pretty(parse(pretty(p))) == pretty(p)`.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a whole program as canonical source text.
pub fn pretty_program(program: &Program) -> String {
    let mut p = Printer::new();
    for (i, item) in program.items.iter().enumerate() {
        if i > 0 {
            p.out.push('\n');
        }
        p.item(item);
    }
    p.out
}

/// Render a single expression as source text.
pub fn pretty_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr, 0);
    p.out
}

/// Render a single statement as source text (no trailing newline),
/// indented at the given level.
pub fn pretty_stmt(stmt: &Stmt, indent: usize) -> String {
    let mut p = Printer {
        out: String::new(),
        indent,
    };
    p.stmt(stmt);
    p.out.trim_end().to_string()
}

/// Render a type expression as source text.
pub fn pretty_type(ty: &TypeExpr) -> String {
    let mut p = Printer::new();
    p.type_expr(ty);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Global(g) => {
                let mut s = format!("global {} : ", g.name);
                self.append_type(&mut s, &g.ty);
                s.push_str(" = ");
                s.push_str(&pretty_expr(&g.init));
                self.line(&s);
            }
            Item::Fun(f) => {
                let mut s = format!("fun {}(", f.name);
                self.append_params(&mut s, &f.params);
                s.push(')');
                if let Some(ret) = &f.ret {
                    s.push_str(" : ");
                    self.append_type(&mut s, ret);
                }
                match f.effect {
                    EffectAnn::Pure => {}
                    eff => {
                        let _ = write!(s, " {eff}");
                    }
                }
                s.push_str(" {");
                self.line(&s);
                self.indent += 1;
                self.block_body(&f.body);
                self.indent -= 1;
                self.line("}");
            }
            Item::Page(pg) => {
                let mut s = format!("page {}(", pg.name);
                self.append_params(&mut s, &pg.params);
                s.push_str(") {");
                self.line(&s);
                self.indent += 1;
                self.line("init {");
                self.indent += 1;
                self.block_body(&pg.init);
                self.indent -= 1;
                self.line("}");
                self.line("render {");
                self.indent += 1;
                self.block_body(&pg.render);
                self.indent -= 1;
                self.line("}");
                self.indent -= 1;
                self.line("}");
            }
            Item::Example(e) => {
                let mut s = format!("example {} = {}", e.name, pretty_expr(&e.body));
                if let Some(expect) = &e.expect {
                    let _ = write!(s, " expect {}", pretty_expr(expect));
                }
                self.line(&s);
            }
        }
    }

    fn append_params(&mut self, s: &mut String, params: &[Param]) {
        for (i, param) in params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{} : ", param.name);
            self.append_type(s, &param.ty);
        }
    }

    fn append_type(&mut self, s: &mut String, ty: &TypeExpr) {
        match &ty.kind {
            TypeExprKind::Number => s.push_str("number"),
            TypeExprKind::String => s.push_str("string"),
            TypeExprKind::Bool => s.push_str("bool"),
            TypeExprKind::Color => s.push_str("color"),
            TypeExprKind::Tuple(elems) => {
                s.push('(');
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    self.append_type(s, e);
                }
                s.push(')');
            }
            TypeExprKind::List(elem) => {
                s.push_str("list ");
                // Parenthesize nested function types for re-parsability.
                if matches!(elem.kind, TypeExprKind::Fn { .. }) {
                    s.push('(');
                    self.append_type(s, elem);
                    s.push(')');
                } else {
                    self.append_type(s, elem);
                }
            }
            TypeExprKind::Fn {
                params,
                effect,
                ret,
            } => {
                s.push_str("fn(");
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    self.append_type(s, p);
                }
                s.push(')');
                match effect {
                    EffectAnn::Pure => {}
                    eff => {
                        let _ = write!(s, " {eff}");
                    }
                }
                s.push_str(" -> ");
                self.append_type(s, ret);
            }
        }
    }

    fn type_expr(&mut self, ty: &TypeExpr) {
        let mut s = String::new();
        self.append_type(&mut s, ty);
        self.out.push_str(&s);
    }

    fn block_body(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
        if let Some(tail) = &block.tail {
            let text = pretty_expr(tail);
            self.line(&text);
        }
    }

    fn inline_block(&mut self, block: &Block) {
        self.out.push_str("{\n");
        self.indent += 1;
        self.block_body(block);
        self.indent -= 1;
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push('}');
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Let { name, ty, value } => {
                let mut s = format!("let {name}");
                if let Some(ty) = ty {
                    s.push_str(" : ");
                    self.append_type(&mut s, ty);
                }
                let _ = write!(s, " = {};", pretty_expr(value));
                self.line(&s);
            }
            StmtKind::Assign { target, value } => {
                self.line(&format!("{target} := {};", pretty_expr(value)));
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                self.start_line(&format!("if {} ", pretty_expr(cond)));
                self.inline_block(then_block);
                if let Some(else_block) = else_block {
                    // Re-sugar a lone nested `if` back to `else if`.
                    if else_block.tail.is_none()
                        && else_block.stmts.len() == 1
                        && matches!(else_block.stmts[0].kind, StmtKind::If { .. })
                    {
                        self.out.push_str(" else ");
                        let nested = &else_block.stmts[0];
                        let text = pretty_stmt(nested, self.indent);
                        self.out.push_str(text.trim_start());
                        self.out.push('\n');
                        return;
                    }
                    self.out.push_str(" else ");
                    self.inline_block(else_block);
                }
                self.out.push('\n');
            }
            StmtKind::While { cond, body } => {
                self.start_line(&format!("while {} ", pretty_expr(cond)));
                self.inline_block(body);
                self.out.push('\n');
            }
            StmtKind::ForRange { var, lo, hi, body } => {
                self.start_line(&format!(
                    "for {var} in {} .. {} ",
                    pretty_expr(lo),
                    pretty_expr(hi)
                ));
                self.inline_block(body);
                self.out.push('\n');
            }
            StmtKind::Foreach { var, list, body } => {
                self.start_line(&format!("foreach {var} in {} ", pretty_expr(list)));
                self.inline_block(body);
                self.out.push('\n');
            }
            StmtKind::Boxed { body } => {
                self.start_line("boxed ");
                self.inline_block(body);
                self.out.push('\n');
            }
            StmtKind::Remember { name, ty, init } => {
                let mut s = format!("remember {name} : ");
                self.append_type(&mut s, ty);
                let _ = write!(s, " = {};", pretty_expr(init));
                self.line(&s);
            }
            StmtKind::Post { value } => {
                self.line(&format!("post {};", pretty_expr(value)));
            }
            StmtKind::SetAttr { attr, value } => {
                self.line(&format!("box.{attr} := {};", pretty_expr(value)));
            }
            StmtKind::On {
                event,
                params,
                body,
            } => {
                let mut s = format!("on {event}");
                if !params.is_empty() {
                    s.push('(');
                    self.append_params(&mut s, params);
                    s.push(')');
                }
                s.push(' ');
                self.start_line(&s);
                self.inline_block(body);
                self.out.push('\n');
            }
            StmtKind::Push { page, args } => {
                let args_text: Vec<String> = args.iter().map(pretty_expr).collect();
                self.line(&format!("push {page}({});", args_text.join(", ")));
            }
            StmtKind::Pop => self.line("pop;"),
            StmtKind::Expr { expr } => {
                self.line(&format!("{};", pretty_expr(expr)));
            }
        }
    }

    fn start_line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
    }

    fn expr(&mut self, expr: &Expr, parent_prec: u8) {
        match &expr.kind {
            ExprKind::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(self.out, "{}", *n as i64);
                } else {
                    let _ = write!(self.out, "{n}");
                }
            }
            ExprKind::Str(s) => {
                self.out.push('"');
                for ch in s.chars() {
                    match ch {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '"' => self.out.push_str("\\\""),
                        '\\' => self.out.push_str("\\\\"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            ExprKind::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::Name(n) => self.out.push_str(n),
            ExprKind::Qualified { ns, name } => {
                let _ = write!(self.out, "{ns}.{name}");
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee, 10);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 0);
                }
                self.out.push(')');
            }
            ExprKind::Tuple(elems) => {
                self.out.push('(');
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e, 0);
                }
                self.out.push(')');
            }
            ExprKind::ListLit(elems) => {
                self.out.push('[');
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e, 0);
                }
                self.out.push(']');
            }
            ExprKind::Proj { base, index } => {
                self.expr(base, 10);
                let _ = write!(self.out, ".{index}");
            }
            ExprKind::Unary { op, expr: inner } => {
                self.out.push_str(op.text());
                let needs_parens = matches!(inner.kind, ExprKind::Binary { .. });
                if needs_parens {
                    self.out.push('(');
                }
                self.expr(inner, 8);
                if needs_parens {
                    self.out.push(')');
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let prec = op.precedence();
                let needs_parens = prec < parent_prec || (prec == parent_prec && parent_prec > 0);
                if needs_parens {
                    self.out.push('(');
                }
                self.expr(lhs, prec - 1);
                let _ = write!(self.out, " {} ", op.text());
                self.expr(rhs, prec);
                if needs_parens {
                    self.out.push(')');
                }
            }
            ExprKind::Lambda {
                params,
                effect,
                body,
            } => {
                self.out.push_str("fn(");
                let mut s = String::new();
                self.append_params(&mut s, params);
                self.out.push_str(&s);
                self.out.push(')');
                match effect {
                    EffectAnn::Pure => {}
                    eff => {
                        let _ = write!(self.out, " {eff}");
                    }
                }
                if body.stmts.is_empty() {
                    if let Some(tail) = &body.tail {
                        self.out.push_str(" -> ");
                        self.expr(tail, 10);
                        return;
                    }
                }
                self.out.push(' ');
                self.inline_block(body);
            }
            ExprKind::IfExpr {
                cond,
                then_block,
                else_block,
            } => {
                self.out.push_str("if ");
                self.expr(cond, 0);
                self.out.push(' ');
                self.inline_block(then_block);
                self.out.push_str(" else ");
                self.inline_block(else_block);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(src: &str) {
        let first = parse_program(src);
        assert!(
            first.is_ok(),
            "initial parse failed:\n{}",
            first.diagnostics.render(src)
        );
        let printed = pretty_program(&first.program);
        let second = parse_program(&printed);
        assert!(
            second.is_ok(),
            "re-parse of pretty output failed:\n{}\n--- printed ---\n{printed}",
            second.diagnostics.render(&printed)
        );
        let printed_again = pretty_program(&second.program);
        assert_eq!(printed, printed_again, "pretty-printing is not idempotent");
    }

    #[test]
    fn roundtrip_globals() {
        roundtrip("global count : number = 0");
        roundtrip(r#"global name : string = "hi\n""#);
        roundtrip("global pair : (number, string) = (1, \"a\")");
        roundtrip("global xs : list number = [1, 2, 3]");
    }

    #[test]
    fn roundtrip_function() {
        roundtrip(
            "fun pay(p: number, r: number, n: number): number pure { \
             p * r / (1 - math.pow(1 + r, -n)) }",
        );
    }

    #[test]
    fn roundtrip_page() {
        roundtrip(
            r#"
            page start() {
                init { count := 0; }
                render {
                    boxed {
                        post "hello";
                        box.margin := 4;
                        on tap { push detail(1); }
                    }
                    for i in 0 .. 10 {
                        boxed { post i; }
                    }
                }
            }
            page detail(x: number) {
                init { }
                render { post x; }
            }
            global count : number = 0
            "#,
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            r#"
            fun f(x: number): number pure {
                let r = 0;
                if x < 1 { r := 1; } else if x < 2 { r := 2; } else { r := 3; }
                while r < 10 { r := r + 1; }
                r
            }
            "#,
        );
    }

    #[test]
    fn parens_preserved_where_needed() {
        let result = parse_program("global g : number = (1 + 2) * 3");
        let printed = pretty_program(&result.program);
        assert!(printed.contains("(1 + 2) * 3"), "got: {printed}");
    }

    #[test]
    fn sub_is_left_associative_in_print() {
        // 1 - 2 - 3 must not print as 1 - (2 - 3) without parens.
        let result = parse_program("global g : number = 1 - 2 - 3");
        let printed = pretty_program(&result.program);
        let re = parse_program(&printed);
        assert_eq!(pretty_program(&re.program), printed);
        assert!(printed.contains("1 - 2 - 3"), "got: {printed}");
    }

    #[test]
    fn roundtrip_remember() {
        roundtrip(
            r#"
            page start() {
                render {
                    boxed {
                        remember clicks : number = 0;
                        post clicks;
                        on tap { clicks := clicks + 1; }
                    }
                }
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_lambda_and_if_expr() {
        roundtrip("global f_applied : number = (fn(x: number) -> x + 1)(2)");
        roundtrip("fun g(b: bool): number pure { if b { 1 } else { 2 } }");
    }
}
