//! Byte-offset source spans and line/column mapping.
//!
//! Every AST node carries a [`Span`] into the source text it was parsed
//! from. Spans are the currency of the live environment: the UI↔code
//! navigation of the paper's Figure 2 maps rendered boxes to the span of
//! the `boxed` statement that created them, and direct manipulation
//! produces text edits addressed by span.

use std::fmt;

/// A half-open byte range `[start, end)` into a source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// The empty span at a position; used for synthesized nodes.
    pub fn point(at: u32) -> Self {
        Span { start: at, end: at }
    }

    /// A dummy span for nodes with no source counterpart.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the byte offset `pos` falls inside the span.
    pub fn contains_pos(&self, pos: u32) -> bool {
        self.start <= pos && pos < self.end
    }

    /// The source slice this span denotes.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `src`.
    pub fn slice<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column positions for one source text.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    /// Index the line structure of `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// Total length of the indexed source, in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the source was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of lines (at least 1, even for an empty source).
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// Line/column of a byte offset. Offsets past the end clamp to the
    /// final position.
    pub fn line_col(&self, pos: u32) -> LineCol {
        let pos = pos.min(self.len);
        let line_idx = match self.line_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: pos - self.line_starts[line_idx] + 1,
        }
    }

    /// The span of the (1-based) line `line`, excluding its newline.
    /// Returns `None` for out-of-range lines.
    pub fn line_span(&self, line: u32) -> Option<Span> {
        let idx = line.checked_sub(1)? as usize;
        let start = *self.line_starts.get(idx)?;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|next| next.saturating_sub(1))
            .unwrap_or(self.len);
        Some(Span::new(start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_contains() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert!(Span::new(0, 10).contains(a));
        assert!(!a.contains(b));
        assert!(a.contains_pos(2));
        assert!(!a.contains_pos(5));
    }

    #[test]
    fn slice_extracts_text() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }

    #[test]
    fn line_col_mapping() {
        let src = "ab\ncd\n\nef";
        let map = SourceMap::new(src);
        assert_eq!(map.line_count(), 4);
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(4), LineCol { line: 2, col: 2 });
        assert_eq!(map.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(8), LineCol { line: 4, col: 2 });
        // Past the end clamps.
        assert_eq!(map.line_col(999), map.line_col(src.len() as u32));
    }

    #[test]
    fn line_spans() {
        let src = "ab\ncd\n";
        let map = SourceMap::new(src);
        assert_eq!(map.line_span(1), Some(Span::new(0, 2)));
        assert_eq!(map.line_span(2), Some(Span::new(3, 5)));
        assert_eq!(map.line_span(3), Some(Span::new(6, 6)));
        assert_eq!(map.line_span(4), None);
        assert_eq!(map.line_span(0), None);
    }

    #[test]
    fn empty_source() {
        let map = SourceMap::new("");
        assert!(map.is_empty());
        assert_eq!(map.line_count(), 1);
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
    }
}
