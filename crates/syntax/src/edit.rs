//! Span-addressed text edits.
//!
//! Live programming is driven by *edits to source text*: the programmer
//! types, or the environment synthesizes a change for them (direct
//! manipulation, paper §3). A [`TextEdit`] replaces a span of the old text
//! with new text; [`apply_edits`] applies a batch in one pass.

use crate::span::Span;
use std::fmt;

/// A single replacement of `span` in the old text by `replacement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextEdit {
    /// The range of old text being replaced (empty span = pure insertion).
    pub span: Span,
    /// The new text.
    pub replacement: String,
}

impl TextEdit {
    /// Replace `span` with `replacement`.
    pub fn replace(span: Span, replacement: impl Into<String>) -> Self {
        TextEdit {
            span,
            replacement: replacement.into(),
        }
    }

    /// Insert `text` at byte offset `at`.
    pub fn insert(at: u32, text: impl Into<String>) -> Self {
        TextEdit {
            span: Span::point(at),
            replacement: text.into(),
        }
    }

    /// Delete the text at `span`.
    pub fn delete(span: Span) -> Self {
        TextEdit {
            span,
            replacement: String::new(),
        }
    }
}

impl fmt::Display for TextEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_empty() {
            write!(f, "insert {:?} at {}", self.replacement, self.span.start)
        } else if self.replacement.is_empty() {
            write!(f, "delete {}", self.span)
        } else {
            write!(f, "replace {} with {:?}", self.span, self.replacement)
        }
    }
}

/// Error applying a batch of edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// Two edits overlap; the conflicting spans are reported.
    Overlap(Span, Span),
    /// An edit's span exceeds the text length.
    OutOfBounds(Span, usize),
    /// An edit splits a UTF-8 character.
    NotCharBoundary(Span),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::Overlap(a, b) => write!(f, "overlapping edits at {a} and {b}"),
            EditError::OutOfBounds(s, len) => {
                write!(f, "edit at {s} out of bounds for text of length {len}")
            }
            EditError::NotCharBoundary(s) => {
                write!(f, "edit at {s} does not fall on a character boundary")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// Apply a batch of non-overlapping edits to `src`, returning the new text.
///
/// Edits may be given in any order; they are applied as if simultaneously
/// (all spans refer to the *original* text). Insertions at the same point
/// are applied in the order given.
///
/// # Errors
///
/// Returns [`EditError`] if edits overlap, run past the end of the text,
/// or split a UTF-8 character. `src` is not modified on error.
pub fn apply_edits(src: &str, edits: &[TextEdit]) -> Result<String, EditError> {
    let mut sorted: Vec<&TextEdit> = edits.iter().collect();
    // Stable sort keeps same-point insertions in given order.
    sorted.sort_by_key(|e| (e.span.start, e.span.end));

    for e in &sorted {
        if e.span.end as usize > src.len() {
            return Err(EditError::OutOfBounds(e.span, src.len()));
        }
        if !src.is_char_boundary(e.span.start as usize)
            || !src.is_char_boundary(e.span.end as usize)
        {
            return Err(EditError::NotCharBoundary(e.span));
        }
    }
    for pair in sorted.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        // Touching is fine; strict overlap is not. Two empty spans at the
        // same point are both insertions and do not overlap.
        if b.span.start < a.span.end {
            return Err(EditError::Overlap(a.span, b.span));
        }
    }

    let mut out = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for e in &sorted {
        out.push_str(&src[cursor..e.span.start as usize]);
        out.push_str(&e.replacement);
        cursor = e.span.end as usize;
    }
    out.push_str(&src[cursor..]);
    Ok(out)
}

/// Apply a *sequence* of edit batches — the shape an edit transaction
/// accumulates: each call to "stage more edits" is one batch whose spans
/// address the text produced by the batches before it, while the edits
/// *within* a batch address the same text simultaneously (the
/// [`apply_edits`] contract). The whole sequence is atomic: any
/// malformed batch fails the call and `src` is reported unchanged.
///
/// # Errors
///
/// The first batch's [`EditError`], if any batch overlaps, runs out of
/// bounds, or splits a UTF-8 character against its base text.
pub fn apply_edit_batches(src: &str, batches: &[Vec<TextEdit>]) -> Result<String, EditError> {
    let mut text = src.to_string();
    for batch in batches {
        text = apply_edits(&text, batch)?;
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_replace() {
        let out = apply_edits(
            "hello world",
            &[TextEdit::replace(Span::new(6, 11), "rust")],
        )
        .expect("applies");
        assert_eq!(out, "hello rust");
    }

    #[test]
    fn multiple_edits_any_order() {
        let src = "aaa bbb ccc";
        let edits = vec![
            TextEdit::replace(Span::new(8, 11), "C"),
            TextEdit::replace(Span::new(0, 3), "A"),
        ];
        assert_eq!(apply_edits(src, &edits).expect("applies"), "A bbb C");
    }

    #[test]
    fn insertion_and_deletion() {
        let src = "margin 4";
        let edits = vec![
            TextEdit::insert(0, ">> "),
            TextEdit::delete(Span::new(6, 8)),
        ];
        assert_eq!(apply_edits(src, &edits).expect("applies"), ">> margin");
    }

    #[test]
    fn same_point_insertions_keep_order() {
        let src = "x";
        let edits = vec![TextEdit::insert(1, "a"), TextEdit::insert(1, "b")];
        assert_eq!(apply_edits(src, &edits).expect("applies"), "xab");
    }

    #[test]
    fn overlap_is_rejected() {
        let src = "abcdef";
        let edits = vec![
            TextEdit::replace(Span::new(0, 3), "x"),
            TextEdit::replace(Span::new(2, 4), "y"),
        ];
        assert!(matches!(
            apply_edits(src, &edits),
            Err(EditError::Overlap(..))
        ));
    }

    #[test]
    fn touching_edits_are_fine() {
        let src = "abcdef";
        let edits = vec![
            TextEdit::replace(Span::new(0, 3), "x"),
            TextEdit::replace(Span::new(3, 6), "y"),
        ];
        assert_eq!(apply_edits(src, &edits).expect("applies"), "xy");
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        assert!(matches!(
            apply_edits("ab", &[TextEdit::delete(Span::new(1, 5))]),
            Err(EditError::OutOfBounds(..))
        ));
    }

    #[test]
    fn batches_apply_sequentially_and_atomically() {
        // Batch 2's span addresses the text *after* batch 1 ran: "ABC"
        // has replaced "abc", so span 0..3 hits the new text.
        let out = apply_edit_batches(
            "abc def",
            &[
                vec![TextEdit::replace(Span::new(0, 3), "ABC")],
                vec![TextEdit::replace(Span::new(4, 7), "DEF")],
                vec![TextEdit::insert(7, "!")],
            ],
        )
        .expect("applies");
        assert_eq!(out, "ABC DEF!");
        // A bad later batch fails the whole sequence.
        assert!(matches!(
            apply_edit_batches(
                "ab",
                &[
                    vec![TextEdit::insert(0, "x")],
                    vec![TextEdit::delete(Span::new(0, 99))],
                ],
            ),
            Err(EditError::OutOfBounds(..))
        ));
        // No batches is the identity.
        assert_eq!(apply_edit_batches("ab", &[]).expect("applies"), "ab");
    }

    #[test]
    fn char_boundary_is_checked() {
        let src = "é"; // two bytes
        assert!(matches!(
            apply_edits(src, &[TextEdit::delete(Span::new(1, 2))]),
            Err(EditError::NotCharBoundary(..))
        ));
    }
}
