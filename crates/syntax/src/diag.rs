//! Diagnostics: errors and warnings with source spans.
//!
//! The live editor never crashes on bad input: lexing, parsing, and type
//! checking all accumulate [`Diagnostic`]s and the previous program keeps
//! running until the new code is clean (paper §3: code is "continuously
//! type-checked, compiled, and executed").

use crate::span::{SourceMap, Span};
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note attached to another diagnostic.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// Prevents the program from being accepted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One problem found in a source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Optional related notes (span + text).
    pub notes: Vec<(Span, String)>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// A new warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attach a note pointing at `span`.
    pub fn with_note(mut self, span: Span, message: impl Into<String>) -> Self {
        self.notes.push((span, message.into()));
        self
    }

    /// Render the diagnostic against its source text, with a caret line.
    pub fn render(&self, src: &str) -> String {
        let map = SourceMap::new(src);
        let mut out = String::new();
        let lc = map.line_col(self.span.start);
        out.push_str(&format!(
            "{}: {} (at {})\n",
            self.severity, self.message, lc
        ));
        if let Some(line_span) = map.line_span(lc.line) {
            let line_text = line_span.slice(src);
            out.push_str(&format!("  {} | {}\n", lc.line, line_text));
            let gutter = format!("  {} | ", lc.line).len();
            let caret_start = (self.span.start - line_span.start) as usize;
            let caret_len = (self.span.len().max(1) as usize)
                .min(line_text.len().saturating_sub(caret_start).max(1));
            out.push_str(&" ".repeat(gutter + caret_start));
            out.push_str(&"^".repeat(caret_len));
            out.push('\n');
        }
        for (nspan, ntext) in &self.notes {
            let nlc = map.line_col(nspan.start);
            out.push_str(&format!("  note: {ntext} (at {nlc})\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (at {})", self.severity, self.message, self.span)
    }
}

/// An accumulating collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// All diagnostics, in the order found.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics of any severity.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether any diagnostic is an error (blocks acceptance).
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Consume into the underlying list.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }

    /// Render every diagnostic against `src`, one after another.
    pub fn render(&self, src: &str) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render(src));
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_detection() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.push(Diagnostic::warning(Span::new(0, 1), "meh"));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::error(Span::new(0, 1), "bad"));
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn render_includes_caret() {
        let src = "let x = oops;";
        let d = Diagnostic::error(Span::new(8, 12), "unknown name `oops`");
        let rendered = d.render(src);
        assert!(rendered.contains("unknown name"));
        assert!(rendered.contains("^^^^"));
        assert!(rendered.contains("1:9"));
    }

    #[test]
    fn render_with_note() {
        let src = "a\nb";
        let d =
            Diagnostic::error(Span::new(2, 3), "bad b").with_note(Span::new(0, 1), "a was here");
        let rendered = d.render(src);
        assert!(rendered.contains("note: a was here"));
        assert!(rendered.contains("2:1"));
    }
}
