//! # alive-syntax
//!
//! Surface syntax of the *its-alive* live UI programming language — a Rust
//! reproduction of the language of *"It's Alive! Continuous Feedback in UI
//! Programming"* (PLDI 2013).
//!
//! The surface language has:
//!
//! * `global g : τ = e` definitions (the program's *model* state),
//! * `fun f(x : τ, ...) : τ µ { ... }` functions with an explicit effect
//!   annotation `µ ∈ {pure, state, render}` (defaults to `pure`),
//! * `page p(x : τ, ...) { init { ... } render { ... } }` pages with the
//!   paper's two bodies,
//! * `boxed { ... }`, `post e;`, `box.attr := e;`, and `on event { ... }`
//!   statements for imperative UI construction,
//! * `push p(e, ...);` / `pop;` page-stack navigation,
//! * plus ordinary expressions, `let`, conditionals and loops.
//!
//! # Example
//!
//! ```
//! use alive_syntax::parse_program;
//!
//! let result = parse_program(r#"
//!     global count : number = 0
//!     page start() {
//!         init { count := 1; }
//!         render { boxed { post count; } }
//!     }
//! "#);
//! assert!(result.is_ok());
//! assert_eq!(result.program.pages().count(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod edit;
pub mod incremental;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod rebase;
pub mod span;
pub mod token;

pub use ast::Program;
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use edit::{apply_edit_batches, apply_edits, EditError, TextEdit};
pub use incremental::{chunk_items, IncrementalParser};
pub use parser::{parse_expr, parse_program, ParseResult};
pub use pretty::{pretty_expr, pretty_program, pretty_stmt, pretty_type};
pub use span::{LineCol, SourceMap, Span};
