//! Span rebasing: shift every span in an AST fragment by a byte delta.
//!
//! The incremental parser re-uses the parsed AST of unchanged top-level
//! items; when earlier edits move an item's text, its cached spans are
//! rebased so they stay *exact* — the whole-program parse and the
//! incremental parse produce identical trees, spans included (a
//! property test in `tests/` holds them equal).

use crate::ast::*;
use crate::span::Span;

/// Shift a span by `delta` bytes (negative moves left).
fn shift(span: Span, delta: i64) -> Span {
    Span {
        start: (i64::from(span.start) + delta) as u32,
        end: (i64::from(span.end) + delta) as u32,
    }
}

/// Rebase all spans in an item by `delta` bytes.
pub fn rebase_item(item: &mut Item, delta: i64) {
    if delta == 0 {
        return;
    }
    match item {
        Item::Global(g) => {
            g.span = shift(g.span, delta);
            rebase_ident(&mut g.name, delta);
            rebase_type(&mut g.ty, delta);
            rebase_expr(&mut g.init, delta);
        }
        Item::Fun(f) => {
            f.span = shift(f.span, delta);
            rebase_ident(&mut f.name, delta);
            for p in &mut f.params {
                rebase_param(p, delta);
            }
            if let Some(ret) = &mut f.ret {
                rebase_type(ret, delta);
            }
            rebase_block(&mut f.body, delta);
        }
        Item::Page(p) => {
            p.span = shift(p.span, delta);
            rebase_ident(&mut p.name, delta);
            for param in &mut p.params {
                rebase_param(param, delta);
            }
            rebase_block(&mut p.init, delta);
            rebase_block(&mut p.render, delta);
        }
        Item::Example(e) => {
            e.span = shift(e.span, delta);
            rebase_ident(&mut e.name, delta);
            rebase_expr(&mut e.body, delta);
            if let Some(expect) = &mut e.expect {
                rebase_expr(expect, delta);
            }
        }
    }
}

fn rebase_ident(ident: &mut Ident, delta: i64) {
    ident.span = shift(ident.span, delta);
}

fn rebase_param(param: &mut Param, delta: i64) {
    rebase_ident(&mut param.name, delta);
    rebase_type(&mut param.ty, delta);
}

fn rebase_type(ty: &mut TypeExpr, delta: i64) {
    ty.span = shift(ty.span, delta);
    match &mut ty.kind {
        TypeExprKind::Number | TypeExprKind::String | TypeExprKind::Bool | TypeExprKind::Color => {}
        TypeExprKind::Tuple(elems) => {
            for e in elems {
                rebase_type(e, delta);
            }
        }
        TypeExprKind::List(elem) => rebase_type(elem, delta),
        TypeExprKind::Fn { params, ret, .. } => {
            for p in params {
                rebase_type(p, delta);
            }
            rebase_type(ret, delta);
        }
    }
}

fn rebase_block(block: &mut Block, delta: i64) {
    block.span = shift(block.span, delta);
    for stmt in &mut block.stmts {
        rebase_stmt(stmt, delta);
    }
    if let Some(tail) = &mut block.tail {
        rebase_expr(tail, delta);
    }
}

fn rebase_stmt(stmt: &mut Stmt, delta: i64) {
    stmt.span = shift(stmt.span, delta);
    match &mut stmt.kind {
        StmtKind::Let { name, ty, value } => {
            rebase_ident(name, delta);
            if let Some(ty) = ty {
                rebase_type(ty, delta);
            }
            rebase_expr(value, delta);
        }
        StmtKind::Assign { target, value } => {
            rebase_ident(target, delta);
            rebase_expr(value, delta);
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            rebase_expr(cond, delta);
            rebase_block(then_block, delta);
            if let Some(else_block) = else_block {
                rebase_block(else_block, delta);
            }
        }
        StmtKind::While { cond, body } => {
            rebase_expr(cond, delta);
            rebase_block(body, delta);
        }
        StmtKind::ForRange { var, lo, hi, body } => {
            rebase_ident(var, delta);
            rebase_expr(lo, delta);
            rebase_expr(hi, delta);
            rebase_block(body, delta);
        }
        StmtKind::Foreach { var, list, body } => {
            rebase_ident(var, delta);
            rebase_expr(list, delta);
            rebase_block(body, delta);
        }
        StmtKind::Boxed { body } => rebase_block(body, delta),
        StmtKind::Remember { name, ty, init } => {
            rebase_ident(name, delta);
            rebase_type(ty, delta);
            rebase_expr(init, delta);
        }
        StmtKind::Post { value } => rebase_expr(value, delta),
        StmtKind::SetAttr { attr, value } => {
            rebase_ident(attr, delta);
            rebase_expr(value, delta);
        }
        StmtKind::On {
            event,
            params,
            body,
        } => {
            rebase_ident(event, delta);
            for p in params {
                rebase_param(p, delta);
            }
            rebase_block(body, delta);
        }
        StmtKind::Push { page, args } => {
            rebase_ident(page, delta);
            for a in args {
                rebase_expr(a, delta);
            }
        }
        StmtKind::Pop => {}
        StmtKind::Expr { expr } => rebase_expr(expr, delta),
    }
}

fn rebase_expr(expr: &mut Expr, delta: i64) {
    expr.span = shift(expr.span, delta);
    match &mut expr.kind {
        ExprKind::Number(_) | ExprKind::Str(_) | ExprKind::Bool(_) | ExprKind::Name(_) => {}
        ExprKind::Qualified { ns, name } => {
            rebase_ident(ns, delta);
            rebase_ident(name, delta);
        }
        ExprKind::Call { callee, args } => {
            rebase_expr(callee, delta);
            for a in args {
                rebase_expr(a, delta);
            }
        }
        ExprKind::Tuple(elems) | ExprKind::ListLit(elems) => {
            for e in elems {
                rebase_expr(e, delta);
            }
        }
        ExprKind::Proj { base, .. } => rebase_expr(base, delta),
        ExprKind::Unary { expr: inner, .. } => rebase_expr(inner, delta),
        ExprKind::Binary { lhs, rhs, .. } => {
            rebase_expr(lhs, delta);
            rebase_expr(rhs, delta);
        }
        ExprKind::Lambda { params, body, .. } => {
            for p in params {
                rebase_param(p, delta);
            }
            rebase_block(body, delta);
        }
        ExprKind::IfExpr {
            cond,
            then_block,
            else_block,
        } => {
            rebase_expr(cond, delta);
            rebase_block(then_block, delta);
            rebase_block(else_block, delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn rebased_item_equals_reparse_at_new_offset() {
        let item_text = "fun f(x : number) : number pure {\n    \
                         let y = x * 2;\n    if y > 3 { y } else { x }\n}";
        // Parse the item standing alone, then parse it after a prefix.
        let alone = parse_program(item_text);
        assert!(alone.is_ok());
        let prefix = "global g : number = 0\n\n";
        let shifted_src = format!("{prefix}{item_text}");
        let shifted = parse_program(&shifted_src);
        assert!(shifted.is_ok());

        let mut rebased = alone.program.items[0].clone();
        rebase_item(&mut rebased, prefix.len() as i64);
        assert_eq!(rebased, shifted.program.items[1]);
    }

    #[test]
    fn negative_delta_moves_left() {
        let src = "global a : number = 1\nglobal b : number = 2";
        let both = parse_program(src);
        let b_alone = parse_program("global b : number = 2");
        let mut rebased = both.program.items[1].clone();
        rebase_item(&mut rebased, -(("global a : number = 1\n".len()) as i64));
        assert_eq!(rebased, b_alone.program.items[0]);
    }

    #[test]
    fn zero_delta_is_identity() {
        let src = "page start() { render { boxed { post 1; } } }";
        let parsed = parse_program(src);
        let mut item = parsed.program.items[0].clone();
        rebase_item(&mut item, 0);
        assert_eq!(item, parsed.program.items[0]);
    }
}
