//! Tokens of the surface language.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Keyword and punctuation variants are individually undocumented: each
/// corresponds 1:1 to its source spelling (see [`TokenKind::text`]).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum TokenKind {
    /// Identifier or keyword-candidate (`listings`, `display_entry`).
    Ident(String),
    /// Numeric literal (`3`, `0.25`).
    Number(f64),
    /// String literal with escapes resolved (`"hello"`).
    Str(String),

    // Keywords.
    Global,
    Fun,
    Page,
    Example,
    Expect,
    Init,
    Render,
    Pure,
    State,
    Let,
    If,
    Else,
    While,
    For,
    Foreach,
    In,
    Boxed,
    Remember,
    Post,
    Box_,
    Push,
    Pop,
    On,
    Fn,
    True,
    False,
    /// `number` type keyword.
    TyNumber,
    /// `string` type keyword.
    TyString,
    /// `bool` type keyword.
    TyBool,
    /// `color` type keyword.
    TyColor,
    /// `list` type keyword.
    TyList,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    ColonEq,
    Eq,
    EqEq,
    BangEq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    PlusPlus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    AmpAmp,
    PipePipe,
    Dot,
    DotDot,
    Arrow,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped word.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "global" => Global,
            "fun" => Fun,
            "page" => Page,
            "example" => Example,
            "expect" => Expect,
            "init" => Init,
            "render" => Render,
            "pure" => Pure,
            "state" => State,
            "let" => Let,
            "if" => If,
            "else" => Else,
            "while" => While,
            "for" => For,
            "foreach" => Foreach,
            "in" => In,
            "boxed" => Boxed,
            "remember" => Remember,
            "post" => Post,
            "box" => Box_,
            "push" => Push,
            "pop" => Pop,
            "on" => On,
            "fn" => Fn,
            "true" => True,
            "false" => False,
            "number" => TyNumber,
            "string" => TyString,
            "bool" => TyBool,
            "color" => TyColor,
            "list" => TyList,
            _ => return None,
        })
    }

    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            Number(n) => format!("number `{n}`"),
            Str(_) => "string literal".to_string(),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.text()),
        }
    }

    /// The literal source text of a fixed token; empty for variable tokens.
    pub fn text(&self) -> &'static str {
        use TokenKind::*;
        match self {
            Global => "global",
            Fun => "fun",
            Page => "page",
            Example => "example",
            Expect => "expect",
            Init => "init",
            Render => "render",
            Pure => "pure",
            State => "state",
            Let => "let",
            If => "if",
            Else => "else",
            While => "while",
            For => "for",
            Foreach => "foreach",
            In => "in",
            Boxed => "boxed",
            Remember => "remember",
            Post => "post",
            Box_ => "box",
            Push => "push",
            Pop => "pop",
            On => "on",
            Fn => "fn",
            True => "true",
            False => "false",
            TyNumber => "number",
            TyString => "string",
            TyBool => "bool",
            TyColor => "color",
            TyList => "list",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Comma => ",",
            Semi => ";",
            Colon => ":",
            ColonEq => ":=",
            Eq => "=",
            EqEq => "==",
            BangEq => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Plus => "+",
            PlusPlus => "++",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Bang => "!",
            AmpAmp => "&&",
            PipePipe => "||",
            Dot => ".",
            DotDot => "..",
            Arrow => "->",
            Ident(_) | Number(_) | Str(_) | Eof => "",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it sits in the source text.
    pub span: Span,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("boxed"), Some(TokenKind::Boxed));
        assert_eq!(TokenKind::keyword("box"), Some(TokenKind::Box_));
        assert_eq!(TokenKind::keyword("widget"), None);
    }

    #[test]
    fn describe_is_nonempty() {
        assert_eq!(TokenKind::ColonEq.describe(), "`:=`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
    }
}
