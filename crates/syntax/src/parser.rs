//! Recursive-descent parser for the surface language.
//!
//! The parser is resilient: on error it records a diagnostic and
//! resynchronizes at the next statement or item boundary, so a live editor
//! can parse mid-edit text without losing the rest of the program.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Result of parsing a source text.
#[derive(Debug, Clone)]
pub struct ParseResult {
    /// The (possibly partial) program.
    pub program: Program,
    /// All lexing and parsing diagnostics.
    pub diagnostics: Diagnostics,
}

impl ParseResult {
    /// Whether the program parsed without errors.
    pub fn is_ok(&self) -> bool {
        !self.diagnostics.has_errors()
    }
}

/// Parse a whole program.
pub fn parse_program(src: &str) -> ParseResult {
    let mut diagnostics = Diagnostics::new();
    let tokens = lex(src, &mut diagnostics);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: diagnostics,
    };
    let program = parser.program(src.len() as u32);
    ParseResult {
        program,
        diagnostics: parser.diags,
    }
}

/// Parse a single expression (used by direct-manipulation code patches).
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostics> {
    let mut diagnostics = Diagnostics::new();
    let tokens = lex(src, &mut diagnostics);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: diagnostics,
    };
    let expr = parser.expr();
    parser.expect(TokenKind::Eof);
    if parser.diags.has_errors() {
        Err(parser.diags)
    } else {
        Ok(expr)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(&kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Span {
        if self.at(&kind) {
            self.bump().span
        } else {
            let found = self.peek().describe();
            self.error(format!("expected {}, found {found}", kind.describe()));
            self.span()
        }
    }

    fn error(&mut self, message: impl Into<String>) {
        self.diags.push(Diagnostic::error(self.span(), message));
    }

    fn ident(&mut self) -> Ident {
        match self.peek().clone() {
            TokenKind::Ident(text) => {
                let span = self.bump().span;
                Ident::new(text, span)
            }
            other => {
                self.error(format!("expected identifier, found {}", other.describe()));
                Ident::new("<error>", self.span())
            }
        }
    }

    // ---- items ------------------------------------------------------

    fn program(&mut self, src_len: u32) -> Program {
        let mut items = Vec::new();
        while !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.peek() {
                TokenKind::Global => items.push(Item::Global(self.global_def())),
                TokenKind::Fun => items.push(Item::Fun(self.fun_def())),
                TokenKind::Page => items.push(Item::Page(self.page_def())),
                TokenKind::Example => items.push(Item::Example(self.example_def())),
                other => {
                    let msg = format!(
                        "expected `global`, `fun`, `page`, or `example`, found {}",
                        other.describe()
                    );
                    self.error(msg);
                    self.recover_to_item();
                }
            }
            if self.pos == before {
                // Guard against non-progress on malformed input.
                self.bump();
            }
        }
        Program {
            items,
            span: Span::new(0, src_len),
        }
    }

    fn recover_to_item(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Global
                | TokenKind::Fun
                | TokenKind::Page
                | TokenKind::Example
                | TokenKind::Eof => break,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn global_def(&mut self) -> GlobalDef {
        let start = self.expect(TokenKind::Global);
        let name = self.ident();
        self.expect(TokenKind::Colon);
        let ty = self.type_expr();
        self.expect(TokenKind::Eq);
        let init = self.expr();
        let span = start.merge(init.span);
        GlobalDef {
            name,
            ty,
            init,
            span,
        }
    }

    fn example_def(&mut self) -> ExampleDef {
        let start = self.expect(TokenKind::Example);
        let name = self.ident();
        self.expect(TokenKind::Eq);
        let body = self.expr();
        let expect = if self.eat(TokenKind::Expect) {
            Some(self.expr())
        } else {
            None
        };
        let end = expect.as_ref().map(|e| e.span).unwrap_or(body.span);
        let span = start.merge(end);
        ExampleDef {
            name,
            body,
            expect,
            span,
        }
    }

    fn fun_def(&mut self) -> FunDef {
        let start = self.expect(TokenKind::Fun);
        let name = self.ident();
        let params = self.param_list();
        let ret = if self.eat(TokenKind::Colon) {
            Some(self.type_expr())
        } else {
            None
        };
        let effect = self.effect_ann();
        let body = self.block();
        let span = start.merge(body.span);
        FunDef {
            name,
            params,
            ret,
            effect,
            body,
            span,
        }
    }

    fn effect_ann(&mut self) -> EffectAnn {
        if self.eat(TokenKind::Pure) {
            EffectAnn::Pure
        } else if self.eat(TokenKind::State) {
            EffectAnn::State
        } else if self.eat(TokenKind::Render) {
            EffectAnn::Render
        } else {
            EffectAnn::Pure
        }
    }

    fn page_def(&mut self) -> PageDef {
        let start = self.expect(TokenKind::Page);
        let name = self.ident();
        let params = self.param_list();
        self.expect(TokenKind::LBrace);
        let mut init = None;
        let mut render = None;
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            if self.eat(TokenKind::Init) {
                let block = self.block();
                if init.replace(block).is_some() {
                    self.diags.push(Diagnostic::error(
                        self.prev_span(),
                        format!("page `{name}` has more than one init body"),
                    ));
                }
            } else if self.eat(TokenKind::Render) {
                let block = self.block();
                if render.replace(block).is_some() {
                    self.diags.push(Diagnostic::error(
                        self.prev_span(),
                        format!("page `{name}` has more than one render body"),
                    ));
                }
            } else {
                self.error("expected `init` or `render` body in page");
                self.bump();
            }
        }
        let end = self.expect(TokenKind::RBrace);
        let span = start.merge(end);
        PageDef {
            name,
            params,
            init: init.unwrap_or_else(|| Block::empty(span)),
            render: render.unwrap_or_else(|| Block::empty(span)),
            span,
        }
    }

    fn param_list(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        self.expect(TokenKind::LParen);
        while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
            let name = self.ident();
            self.expect(TokenKind::Colon);
            let ty = self.type_expr();
            params.push(Param { name, ty });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen);
        params
    }

    // ---- types ------------------------------------------------------

    fn type_expr(&mut self) -> TypeExpr {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::TyNumber => {
                self.bump();
                TypeExprKind::Number
            }
            TokenKind::TyString => {
                self.bump();
                TypeExprKind::String
            }
            TokenKind::TyBool => {
                self.bump();
                TypeExprKind::Bool
            }
            TokenKind::TyColor => {
                self.bump();
                TypeExprKind::Color
            }
            TokenKind::TyList => {
                self.bump();
                let elem = self.type_expr();
                TypeExprKind::List(Box::new(elem))
            }
            TokenKind::LParen => {
                self.bump();
                let mut elems = Vec::new();
                while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
                    elems.push(self.type_expr());
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen);
                if elems.len() == 1 {
                    // `(τ)` is just τ, not a 1-tuple.
                    let only = elems.pop().expect("one element");
                    return TypeExpr {
                        kind: only.kind,
                        span: start.merge(self.prev_span()),
                    };
                }
                TypeExprKind::Tuple(elems)
            }
            TokenKind::Fn => {
                self.bump();
                self.expect(TokenKind::LParen);
                let mut params = Vec::new();
                while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
                    params.push(self.type_expr());
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen);
                let effect = self.effect_ann();
                self.expect(TokenKind::Arrow);
                let ret = Box::new(self.type_expr());
                TypeExprKind::Fn {
                    params,
                    effect,
                    ret,
                }
            }
            other => {
                self.error(format!("expected a type, found {}", other.describe()));
                if !self.at_recovery_point() {
                    self.bump();
                }
                TypeExprKind::Tuple(Vec::new())
            }
        };
        TypeExpr {
            kind,
            span: start.merge(self.prev_span()),
        }
    }

    // ---- statements and blocks ---------------------------------------

    fn block(&mut self) -> Block {
        let start = self.expect(TokenKind::LBrace);
        let mut stmts = Vec::new();
        let mut tail: Option<Box<Expr>> = None;
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            if let Some(stmt_or_tail) = self.stmt_or_tail() {
                match stmt_or_tail {
                    StmtOrTail::Stmt(s) => stmts.push(s),
                    StmtOrTail::Tail(e) => {
                        tail = Some(Box::new(e));
                        break;
                    }
                }
            }
            if self.pos == before {
                self.bump();
            }
        }
        let end = self.expect(TokenKind::RBrace);
        Block {
            stmts,
            tail,
            span: start.merge(end),
        }
    }

    fn stmt_or_tail(&mut self) -> Option<StmtOrTail> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Let => {
                self.bump();
                let name = self.ident();
                let ty = if self.eat(TokenKind::Colon) {
                    Some(self.type_expr())
                } else {
                    None
                };
                self.expect(TokenKind::Eq);
                let value = self.expr();
                self.expect(TokenKind::Semi);
                StmtKind::Let { name, ty, value }
            }
            TokenKind::If => {
                self.bump();
                let stmt = self.if_stmt(start);
                // An `if` whose branches produce values and which ends the
                // block is the block's tail value (Rust-style).
                if self.at(&TokenKind::RBrace) {
                    if let Some(expr) = if_stmt_to_expr(&stmt) {
                        return Some(StmtOrTail::Tail(expr));
                    }
                }
                return Some(StmtOrTail::Stmt(stmt));
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr();
                let body = self.block();
                StmtKind::While { cond, body }
            }
            TokenKind::For => {
                self.bump();
                let var = self.ident();
                self.expect(TokenKind::In);
                let lo = self.expr();
                self.expect(TokenKind::DotDot);
                let hi = self.expr();
                let body = self.block();
                StmtKind::ForRange { var, lo, hi, body }
            }
            TokenKind::Foreach => {
                self.bump();
                let var = self.ident();
                self.expect(TokenKind::In);
                let list = self.expr();
                let body = self.block();
                StmtKind::Foreach { var, list, body }
            }
            TokenKind::Boxed => {
                self.bump();
                let body = self.block();
                StmtKind::Boxed { body }
            }
            TokenKind::Remember => {
                self.bump();
                let name = self.ident();
                self.expect(TokenKind::Colon);
                let ty = self.type_expr();
                self.expect(TokenKind::Eq);
                let init = self.expr();
                self.expect(TokenKind::Semi);
                StmtKind::Remember { name, ty, init }
            }
            TokenKind::Post => {
                self.bump();
                let value = self.expr();
                self.expect(TokenKind::Semi);
                StmtKind::Post { value }
            }
            TokenKind::Box_ => {
                self.bump();
                self.expect(TokenKind::Dot);
                let attr = self.ident();
                self.expect(TokenKind::ColonEq);
                let value = self.expr();
                self.expect(TokenKind::Semi);
                StmtKind::SetAttr { attr, value }
            }
            TokenKind::On => {
                self.bump();
                let event = self.ident();
                let params = if self.at(&TokenKind::LParen) {
                    self.param_list()
                } else {
                    Vec::new()
                };
                let body = self.block();
                StmtKind::On {
                    event,
                    params,
                    body,
                }
            }
            TokenKind::Push => {
                self.bump();
                let page = self.ident();
                self.expect(TokenKind::LParen);
                let mut args = Vec::new();
                while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
                    args.push(self.expr());
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen);
                self.expect(TokenKind::Semi);
                StmtKind::Push { page, args }
            }
            TokenKind::Pop => {
                self.bump();
                self.expect(TokenKind::Semi);
                StmtKind::Pop
            }
            // `x := e;` assignment.
            TokenKind::Ident(_) if *self.peek2() == TokenKind::ColonEq => {
                let target = self.ident();
                self.expect(TokenKind::ColonEq);
                let value = self.expr();
                self.expect(TokenKind::Semi);
                StmtKind::Assign { target, value }
            }
            _ => {
                let expr = self.expr();
                if self.eat(TokenKind::Semi) {
                    StmtKind::Expr { expr }
                } else {
                    // No semicolon: this is the block's tail value.
                    return Some(StmtOrTail::Tail(expr));
                }
            }
        };
        let span = start.merge(self.prev_span());
        Some(StmtOrTail::Stmt(Stmt { kind, span }))
    }

    /// Parse an `if` statement whose `if` token is already consumed.
    fn if_stmt(&mut self, start: Span) -> Stmt {
        let cond = self.expr();
        let then_block = self.block();
        let else_block = if self.eat(TokenKind::Else) {
            if self.at(&TokenKind::If) {
                // `else if ...` — wrap the nested if in a synthetic block.
                let nested_start = self.span();
                self.bump();
                let nested = self.if_stmt(nested_start);
                let span = nested.span;
                Some(Block {
                    stmts: vec![nested],
                    tail: None,
                    span,
                })
            } else {
                Some(self.block())
            }
        } else {
            None
        };
        let span = start.merge(self.prev_span());
        Stmt {
            kind: StmtKind::If {
                cond,
                then_block,
                else_block,
            },
            span,
        }
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Expr {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Expr {
        let mut lhs = self.unary_expr();
        loop {
            let op = match self.peek() {
                TokenKind::PipePipe => BinOp::Or,
                TokenKind::AmpAmp => BinOp::And,
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::BangEq => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::PlusPlus => BinOp::Concat,
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            let prec = op.precedence();
            if prec <= min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec);
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        lhs
    }

    fn unary_expr(&mut self) -> Expr {
        let start = self.span();
        if self.eat(TokenKind::Minus) {
            let inner = self.unary_expr();
            let span = start.merge(inner.span);
            return Expr {
                kind: ExprKind::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(inner),
                },
                span,
            };
        }
        if self.eat(TokenKind::Bang) {
            let inner = self.unary_expr();
            let span = start.merge(inner.span);
            return Expr {
                kind: ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(inner),
                },
                span,
            };
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Expr {
        let mut expr = self.primary_expr();
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
                        args.push(self.expr());
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(TokenKind::RParen);
                    let span = expr.span.merge(end);
                    expr = Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(expr),
                            args,
                        },
                        span,
                    };
                }
                TokenKind::Dot => {
                    match self.peek2().clone() {
                        TokenKind::Number(n) => {
                            self.bump();
                            let num_span = self.bump().span;
                            let index = n as u32;
                            if index == 0 || (n.fract() != 0.0) {
                                self.diags.push(Diagnostic::error(
                                    num_span,
                                    "tuple projection index must be a positive integer",
                                ));
                            }
                            let span = expr.span.merge(num_span);
                            expr = Expr {
                                kind: ExprKind::Proj {
                                    base: Box::new(expr),
                                    index: index.max(1),
                                },
                                span,
                            };
                        }
                        TokenKind::Ident(name) => {
                            // Namespace access: only valid on a bare name.
                            if let ExprKind::Name(ns_text) = &expr.kind {
                                let ns = Ident::new(ns_text.clone(), expr.span);
                                self.bump();
                                let name_span = self.bump().span;
                                let span = expr.span.merge(name_span);
                                expr = Expr {
                                    kind: ExprKind::Qualified {
                                        ns,
                                        name: Ident::new(name, name_span),
                                    },
                                    span,
                                };
                            } else {
                                self.error(
                                    "`.name` access is only valid on a namespace \
                                     (e.g. `math.floor`); tuple projection uses `.1`",
                                );
                                self.bump();
                                self.bump();
                            }
                        }
                        other => {
                            let msg = format!(
                                "expected projection index or member name after `.`, found {}",
                                other.describe()
                            );
                            self.error(msg);
                            self.bump();
                        }
                    }
                }
                _ => break,
            }
        }
        expr
    }

    fn primary_expr(&mut self) -> Expr {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                ExprKind::Number(n)
            }
            TokenKind::Str(s) => {
                self.bump();
                ExprKind::Str(s)
            }
            TokenKind::True => {
                self.bump();
                ExprKind::Bool(true)
            }
            TokenKind::False => {
                self.bump();
                ExprKind::Bool(false)
            }
            TokenKind::Ident(name) => {
                self.bump();
                ExprKind::Name(name)
            }
            // `list` is a type keyword, but it is also the namespace of
            // the list primitives (`list.length(xs)`).
            TokenKind::TyList if *self.peek2() == TokenKind::Dot => {
                self.bump();
                ExprKind::Name("list".to_string())
            }
            TokenKind::LParen => {
                self.bump();
                let mut elems = Vec::new();
                let mut trailing_comma = false;
                while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
                    elems.push(self.expr());
                    trailing_comma = self.eat(TokenKind::Comma);
                    if !trailing_comma {
                        break;
                    }
                }
                let end = self.expect(TokenKind::RParen);
                if elems.len() == 1 && !trailing_comma {
                    // Parenthesized expression.
                    let mut only = elems.pop().expect("one element");
                    only.span = start.merge(end);
                    return only;
                }
                ExprKind::Tuple(elems)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                while !self.at(&TokenKind::RBracket) && !self.at(&TokenKind::Eof) {
                    elems.push(self.expr());
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBracket);
                ExprKind::ListLit(elems)
            }
            TokenKind::Fn => {
                self.bump();
                let params = self.param_list();
                let effect = self.effect_ann();
                let body = if self.eat(TokenKind::Arrow) {
                    let e = self.expr();
                    let span = e.span;
                    Block {
                        stmts: Vec::new(),
                        tail: Some(Box::new(e)),
                        span,
                    }
                } else {
                    self.block()
                };
                ExprKind::Lambda {
                    params,
                    effect,
                    body: Box::new(body),
                }
            }
            TokenKind::If => {
                self.bump();
                let cond = Box::new(self.expr());
                let then_block = Box::new(self.block());
                self.expect(TokenKind::Else);
                let else_block = Box::new(if self.at(&TokenKind::If) {
                    // `else if` chain in expression position.
                    let nested = self.expr();
                    let span = nested.span;
                    Block {
                        stmts: Vec::new(),
                        tail: Some(Box::new(nested)),
                        span,
                    }
                } else {
                    self.block()
                });
                ExprKind::IfExpr {
                    cond,
                    then_block,
                    else_block,
                }
            }
            other => {
                self.error(format!(
                    "expected an expression, found {}",
                    other.describe()
                ));
                if !self.at_recovery_point() {
                    self.bump();
                }
                ExprKind::Tuple(Vec::new())
            }
        };
        Expr {
            kind,
            span: start.merge(self.prev_span()),
        }
    }
}

impl Parser {
    /// Tokens that error recovery must not consume, because a later parse
    /// stage synchronizes on them.
    fn at_recovery_point(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Global
                | TokenKind::Fun
                | TokenKind::Page
                | TokenKind::Example
                | TokenKind::RBrace
                | TokenKind::Semi
                | TokenKind::Eof
        )
    }
}

enum StmtOrTail {
    Stmt(Stmt),
    Tail(Expr),
}

/// Convert a value-producing `if` statement into an `if` expression, for
/// blocks that end in `if c { v1 } else { v2 }`.
fn if_stmt_to_expr(stmt: &Stmt) -> Option<Expr> {
    let StmtKind::If {
        cond,
        then_block,
        else_block,
    } = &stmt.kind
    else {
        return None;
    };
    let else_block = else_block.as_ref()?;
    then_block.tail.as_ref()?;
    // An `else if` chain was parsed as a block holding a single nested if;
    // convert it recursively.
    let else_converted = if else_block.tail.is_none()
        && else_block.stmts.len() == 1
        && matches!(else_block.stmts[0].kind, StmtKind::If { .. })
    {
        let nested = if_stmt_to_expr(&else_block.stmts[0])?;
        let span = nested.span;
        Block {
            stmts: Vec::new(),
            tail: Some(Box::new(nested)),
            span,
        }
    } else {
        else_block.tail.as_ref()?;
        else_block.clone()
    };
    Some(Expr {
        kind: ExprKind::IfExpr {
            cond: Box::new(cond.clone()),
            then_block: Box::new(then_block.clone()),
            else_block: Box::new(else_converted),
        },
        span: stmt.span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        let result = parse_program(src);
        assert!(
            result.is_ok(),
            "parse failed:\n{}",
            result.diagnostics.render(src)
        );
        result.program
    }

    #[test]
    fn parses_global() {
        let p = ok("global count : number = 0");
        assert_eq!(p.globals().count(), 1);
        let g = p.globals().next().expect("one global");
        assert_eq!(g.name.text, "count");
        assert_eq!(g.ty.kind, TypeExprKind::Number);
    }

    #[test]
    fn parses_function_with_effect() {
        let p = ok("fun f(x: number): number pure { x + 1 }");
        let f = p.funs().next().expect("one fun");
        assert_eq!(f.effect, EffectAnn::Pure);
        assert_eq!(f.params.len(), 1);
        assert!(f.body.tail.is_some());
    }

    #[test]
    fn parses_page_with_init_and_render() {
        let p = ok("page start() { init { count := 1; } render { post count; } }");
        let pg = p.pages().next().expect("one page");
        assert_eq!(pg.name.text, "start");
        assert_eq!(pg.init.stmts.len(), 1);
        assert_eq!(pg.render.stmts.len(), 1);
    }

    #[test]
    fn parses_boxed_and_attrs() {
        let p = ok(r#"
            page start() {
                render {
                    boxed {
                        post "hi";
                        box.margin := 4;
                        on tap { pop; }
                    }
                }
            }
        "#);
        let pg = p.pages().next().expect("page");
        let StmtKind::Boxed { body } = &pg.render.stmts[0].kind else {
            panic!("expected boxed");
        };
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(body.stmts[0].kind, StmtKind::Post { .. }));
        assert!(matches!(body.stmts[1].kind, StmtKind::SetAttr { .. }));
        assert!(matches!(body.stmts[2].kind, StmtKind::On { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = ok("global g : number = 1 + 2 * 3");
        let g = p.globals().next().expect("global");
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &g.init.kind
        else {
            panic!("expected + at top: {:?}", g.init.kind);
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn concat_binds_looser_than_add() {
        let p = ok(r#"global g : string = "n=" ++ 1 + 2"#);
        let g = p.globals().next().expect("global");
        let ExprKind::Binary {
            op: BinOp::Concat,
            rhs,
            ..
        } = &g.init.kind
        else {
            panic!("expected ++ at top");
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn qualified_names_and_calls() {
        let p = ok("global g : number = math.floor(2.5)");
        let g = p.globals().next().expect("global");
        let ExprKind::Call { callee, args } = &g.init.kind else {
            panic!("expected call");
        };
        assert!(matches!(&callee.kind, ExprKind::Qualified { ns, name }
            if ns.text == "math" && name.text == "floor"));
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn projection_is_one_based() {
        let p = ok("fun f(t: (string, number)): string pure { t.1 }");
        let f = p.funs().next().expect("fun");
        let tail = f.body.tail.as_ref().expect("tail");
        assert!(matches!(tail.kind, ExprKind::Proj { index: 1, .. }));
    }

    #[test]
    fn for_range_and_foreach() {
        let p = ok(r#"
            page start() {
                render {
                    for i in 0 .. 10 { boxed { post i; } }
                    foreach x in [1, 2, 3] { post x; }
                }
            }
        "#);
        let pg = p.pages().next().expect("page");
        assert!(matches!(pg.render.stmts[0].kind, StmtKind::ForRange { .. }));
        assert!(matches!(pg.render.stmts[1].kind, StmtKind::Foreach { .. }));
    }

    #[test]
    fn else_if_chain() {
        let p = ok(r#"
            fun f(x: number): number pure {
                let r = 0;
                if x < 1 { r := 1; } else if x < 2 { r := 2; } else { r := 3; }
                r
            }
        "#);
        let f = p.funs().next().expect("fun");
        let StmtKind::If {
            else_block: Some(else_block),
            ..
        } = &f.body.stmts[1].kind
        else {
            panic!("expected if with else");
        };
        assert!(matches!(else_block.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn lambda_forms() {
        let p = ok("global f_applied : number = (fn(x: number) -> x + 1)(2)");
        assert_eq!(p.globals().count(), 1);
        let p2 = ok("fun g(): () state { let h = fn(u: ()) state { pop; }; }");
        assert_eq!(p2.funs().count(), 1);
    }

    #[test]
    fn if_expression() {
        let p = ok("fun f(b: bool): number pure { if b { 1 } else { 2 } }");
        let f = p.funs().next().expect("fun");
        assert!(matches!(
            f.body.tail.as_ref().expect("tail").kind,
            ExprKind::IfExpr { .. }
        ));
    }

    #[test]
    fn push_and_pop() {
        let p = ok(r#"
            page start() {
                render {
                    on tap { push detail("a", 2); }
                }
            }
            page detail(addr: string, price: number) {
                render { on tap { pop; } }
            }
        "#);
        assert_eq!(p.pages().count(), 2);
    }

    #[test]
    fn unit_and_tuples() {
        ok("global u : () = ()");
        ok("global t : (number, string) = (1, \"x\")");
        ok("global n : number = (1 + 2) * 3");
    }

    #[test]
    fn error_recovery_keeps_later_items() {
        let result = parse_program("global bad = \nfun ok(): number pure { 1 }");
        assert!(!result.is_ok());
        // The following fun still parses.
        assert_eq!(result.program.funs().count(), 1);
    }

    #[test]
    fn parse_expr_entry_point() {
        let e = parse_expr("1 + 2").expect("parses");
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Add, .. }));
        assert!(parse_expr("1 +").is_err());
    }

    #[test]
    fn spans_cover_source() {
        let src = "global count : number = 42";
        let p = ok(src);
        let g = p.globals().next().expect("global");
        assert_eq!(g.span.slice(src), src);
        assert_eq!(g.init.span.slice(src), "42");
    }
}
