//! Surface abstract syntax.
//!
//! This is the tree produced by the parser, with every node carrying its
//! [`Span`]. It corresponds to the paper's Figure 6 syntax plus the
//! standard conveniences (loops, conditionals, `let`, operators) that the
//! paper notes are "expressible in our calculus via recursion through
//! global functions" (§4.1) and that its own example programs use
//! (Figures 3–5).

use crate::span::Span;
use std::fmt;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The identifier text.
    pub text: String,
    /// Source location.
    pub span: Span,
}

impl Ident {
    /// Construct an identifier.
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        Ident {
            text: text.into(),
            span,
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Effect annotations: the paper's `p` (pure), `s` (state), `r` (render).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EffectAnn {
    /// No side effects; usable in any mode (`p`).
    #[default]
    Pure,
    /// May write globals and navigate pages (`s`).
    State,
    /// May create boxes, post content, set attributes (`r`).
    Render,
}

impl fmt::Display for EffectAnn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EffectAnn::Pure => "pure",
            EffectAnn::State => "state",
            EffectAnn::Render => "render",
        })
    }
}

/// A type expression as written in source.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeExpr {
    /// The shape of the type.
    pub kind: TypeExprKind,
    /// Source location.
    pub span: Span,
}

/// The shape of a [`TypeExpr`].
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExprKind {
    /// `number`
    Number,
    /// `string`
    String,
    /// `bool`
    Bool,
    /// `color`
    Color,
    /// `(τ1, ..., τn)`; `()` is the unit type.
    Tuple(Vec<TypeExpr>),
    /// `list τ`
    List(Box<TypeExpr>),
    /// `fn(τ1, ..., τn) µ -> τ`
    Fn {
        /// Parameter types.
        params: Vec<TypeExpr>,
        /// Latent effect of the function.
        effect: EffectAnn,
        /// Return type.
        ret: Box<TypeExpr>,
    },
}

/// A `name : type` parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: Ident,
    /// Declared type.
    pub ty: TypeExpr,
}

/// A whole compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Span of the whole text.
    pub span: Span,
}

impl Program {
    /// Iterate over global variable definitions.
    pub fn globals(&self) -> impl Iterator<Item = &GlobalDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(g) => Some(g),
            _ => None,
        })
    }

    /// Iterate over function definitions.
    pub fn funs(&self) -> impl Iterator<Item = &FunDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Fun(f) => Some(f),
            _ => None,
        })
    }

    /// Iterate over page definitions.
    pub fn pages(&self) -> impl Iterator<Item = &PageDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Page(p) => Some(p),
            _ => None,
        })
    }

    /// Iterate over live example definitions.
    pub fn examples(&self) -> impl Iterator<Item = &ExampleDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Example(e) => Some(e),
            _ => None,
        })
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `global g : τ = v`
    Global(GlobalDef),
    /// `fun f(params) : τ µ { ... }`
    Fun(FunDef),
    /// `page p(params) { init { ... } render { ... } }`
    Page(PageDef),
    /// `example e = expr [expect expr]` — a Babylonian live example.
    Example(ExampleDef),
}

impl Item {
    /// The item's name.
    pub fn name(&self) -> &Ident {
        match self {
            Item::Global(g) => &g.name,
            Item::Fun(f) => &f.name,
            Item::Page(p) => &p.name,
            Item::Example(e) => &e.name,
        }
    }

    /// The item's full span.
    pub fn span(&self) -> Span {
        match self {
            Item::Global(g) => g.span,
            Item::Fun(f) => f.span,
            Item::Page(p) => p.span,
            Item::Example(e) => e.span,
        }
    }
}

/// `example e = body [expect e']` — a continuously evaluated probe in
/// the Babylonian style: `body` is a pure expression re-run on every
/// edit, and the optional `expect` clause makes the probe self-checking.
#[derive(Debug, Clone, PartialEq)]
pub struct ExampleDef {
    /// Example name (its probe label).
    pub name: Ident,
    /// The probed expression (must be pure).
    pub body: Expr,
    /// Optional expected value (must be pure).
    pub expect: Option<Expr>,
    /// Full item span.
    pub span: Span,
}

/// `global g : τ = e` — model state, as in Figure 7's `global` definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Variable name.
    pub name: Ident,
    /// Declared (→-free) type.
    pub ty: TypeExpr,
    /// Initial value expression (must be pure).
    pub init: Expr,
    /// Full item span.
    pub span: Span,
}

/// A global function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// Function name.
    pub name: Ident,
    /// Parameters.
    pub params: Vec<Param>,
    /// Declared return type; `None` means unit.
    pub ret: Option<TypeExpr>,
    /// Latent effect; defaults to `pure`.
    pub effect: EffectAnn,
    /// Body block; its value is the return value.
    pub body: Block,
    /// Full item span.
    pub span: Span,
}

/// A page definition with separate init and render bodies (paper §3).
#[derive(Debug, Clone, PartialEq)]
pub struct PageDef {
    /// Page name.
    pub name: Ident,
    /// Page arguments (→-free types), supplied by `push`.
    pub params: Vec<Param>,
    /// Initialization body: state effect, runs once when pushed.
    pub init: Block,
    /// Render body: render effect, re-runs on every display refresh.
    pub render: Block,
    /// Full item span.
    pub span: Span,
}

/// A `{ ... }` block: statements plus an optional trailing value expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Optional trailing expression (no semicolon) — the block's value.
    pub tail: Option<Box<Expr>>,
    /// Span including the braces.
    pub span: Span,
}

impl Block {
    /// An empty block at `span`.
    pub fn empty(span: Span) -> Self {
        Block {
            stmts: Vec::new(),
            tail: None,
            span,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement's shape.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// The shape of a [`Stmt`].
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let x : τ = e;` — immutable-by-default local binding
    /// (re-assignable with `x := e`).
    Let {
        /// Bound name.
        name: Ident,
        /// Optional type annotation.
        ty: Option<TypeExpr>,
        /// Initializer.
        value: Expr,
    },
    /// `x := e;` — assignment to a local or (in state code) a global.
    Assign {
        /// Assignment target.
        target: Ident,
        /// New value.
        value: Expr,
    },
    /// `if c { ... } else { ... }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Else branch, if present (`else if` nests a block with one `if`).
        else_block: Option<Block>,
    },
    /// `while c { ... }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for i in lo .. hi { ... }` — iterates `i = lo, lo+1, ..., hi-1`.
    ForRange {
        /// Loop variable.
        var: Ident,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Loop body.
        body: Block,
    },
    /// `foreach x in e { ... }` — iterates over a list.
    Foreach {
        /// Loop variable.
        var: Ident,
        /// List expression.
        list: Expr,
        /// Loop body.
        body: Block,
    },
    /// `boxed { ... }` — creates a nested box (render code only).
    Boxed {
        /// Contents rendered inside the new box.
        body: Block,
    },
    /// `remember x : τ = e;` — encapsulated view state (the paper's §7
    /// future-work extension): a per-box-instance slot that survives
    /// re-renders, readable in render code, assignable in handlers.
    Remember {
        /// Slot name (scoped like a `let` to the rest of the block).
        name: Ident,
        /// Declared (→-free) slot type.
        ty: TypeExpr,
        /// Initial value (pure), evaluated the first time the slot is
        /// seen after a code update.
        init: Expr,
    },
    /// `post e;` — appends content to the current box (render code only).
    Post {
        /// Posted value.
        value: Expr,
    },
    /// `box.a := e;` — sets an attribute of the current box.
    SetAttr {
        /// Attribute name.
        attr: Ident,
        /// Attribute value.
        value: Expr,
    },
    /// `on tap { ... }` / `on edited(x) { ... }` — sugar for installing an
    /// event-handler attribute whose value is a state-effect closure.
    On {
        /// Event name (`tap`, `edited`, ...).
        event: Ident,
        /// Handler parameters.
        params: Vec<Param>,
        /// Handler body (state effect).
        body: Block,
    },
    /// `push p(e1, ..., en);` — enqueue navigation to page `p`.
    Push {
        /// Page name.
        page: Ident,
        /// Page arguments.
        args: Vec<Expr>,
    },
    /// `pop;` — enqueue popping the current page.
    Pop,
    /// An expression evaluated for effect, `e;`.
    Expr {
        /// The expression.
        expr: Expr,
    },
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// The shape of an [`Expr`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// A bare name: local, global, function, or page (resolved in lowering).
    Name(String),
    /// A namespaced name such as `math.floor` or `colors.light_blue`.
    Qualified {
        /// Namespace (`math`, `str`, `fmt`, `colors`, `web`, `list`).
        ns: Ident,
        /// Member name.
        name: Ident,
    },
    /// `f(e1, ..., en)`.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `(e1, ..., en)` for n ≠ 1; `()` is unit.
    Tuple(Vec<Expr>),
    /// `[e1, ..., en]` list literal.
    ListLit(Vec<Expr>),
    /// `e.n` — 1-based tuple projection, as in the paper.
    Proj {
        /// Tuple expression.
        base: Box<Expr>,
        /// 1-based component index.
        index: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `fn(params) µ -> e` or `fn(params) µ { ... }`.
    Lambda {
        /// Parameters.
        params: Vec<Param>,
        /// Latent effect annotation; defaults to `pure`.
        effect: EffectAnn,
        /// Body.
        body: Box<Block>,
    },
    /// `if c { ... } else { ... }` in expression position; both branches
    /// must produce a value.
    IfExpr {
        /// Condition.
        cond: Box<Expr>,
        /// Then branch.
        then_block: Box<Block>,
        /// Else branch.
        else_block: Box<Block>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Numeric negation `-e`.
    Neg,
    /// Boolean negation `!e`.
    Not,
}

impl UnOp {
    /// Source text of the operator.
    pub fn text(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        }
    }
}

/// Binary operators, loosest-binding first in the precedence table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `++` string concatenation (coerces numbers/bools to strings).
    Concat,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (floating-point remainder, like the paper's `math→mod`).
    Mod,
}

impl BinOp {
    /// Source text of the operator.
    pub fn text(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Concat => "++",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// Binding strength; larger binds tighter. Used by both the parser and
    /// the pretty-printer so they stay consistent.
    pub fn precedence(self) -> u8 {
        use BinOp::*;
        match self {
            Or => 1,
            And => 2,
            Eq | Ne => 3,
            Lt | Le | Gt | Ge => 4,
            Concat => 5,
            Add | Sub => 6,
            Mul | Div | Mod => 7,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text())
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_is_strictly_layered() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Concat.precedence());
        assert!(BinOp::Concat.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn program_item_filters() {
        let span = Span::DUMMY;
        let prog = Program {
            items: vec![Item::Global(GlobalDef {
                name: Ident::new("g", span),
                ty: TypeExpr {
                    kind: TypeExprKind::Number,
                    span,
                },
                init: Expr {
                    kind: ExprKind::Number(0.0),
                    span,
                },
                span,
            })],
            span,
        };
        assert_eq!(prog.globals().count(), 1);
        assert_eq!(prog.funs().count(), 0);
        assert_eq!(prog.pages().count(), 0);
    }
}
