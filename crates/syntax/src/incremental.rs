//! Incremental parsing at top-level item granularity.
//!
//! The paper's editor "continuously" re-compiles on every keystroke
//! (§3); TouchDevelop kept that fast with incremental compilation. An
//! [`IncrementalParser`] owns the parsed document: on the next
//! keystroke only the items whose chunk text changed are re-parsed; the
//! rest are *moved* (not cloned) out of the previous tree, with their
//! spans rebased in place when an earlier edit shifted them. The result
//! is guaranteed (and property-tested) to equal a from-scratch parse,
//! spans and diagnostics included.

use crate::ast::{Item, Program};
use crate::diag::{Diagnostic, Diagnostics};
use crate::lexer::lex;
use crate::parser::{parse_program, ParseResult};
use crate::rebase::rebase_item;
use crate::span::Span;
use crate::token::TokenKind;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// One top-level chunk of source text: an item plus its trailing trivia.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Byte range of the chunk in the source.
    pub span: Span,
    /// Hash of the chunk's text.
    pub hash: u64,
}

/// Split a source text into top-level item chunks. A chunk starts at a
/// `global` / `fun` / `page` keyword at bracket depth 0 and runs to the
/// next such keyword (or the end); leading trivia belongs to the first
/// chunk. A source with no item keywords is one big chunk.
pub fn chunk_items(src: &str) -> Vec<Chunk> {
    let mut diags = Diagnostics::new();
    let tokens = lex(src, &mut diags);
    let mut starts: Vec<u32> = Vec::new();
    let mut depth = 0i32;
    for token in &tokens {
        match &token.kind {
            TokenKind::LBrace | TokenKind::LParen | TokenKind::LBracket => depth += 1,
            TokenKind::RBrace | TokenKind::RParen | TokenKind::RBracket => depth -= 1,
            TokenKind::Global | TokenKind::Fun | TokenKind::Page | TokenKind::Example
                if depth <= 0 =>
            {
                starts.push(token.span.start);
            }
            _ => {}
        }
    }
    if starts.is_empty() {
        starts.push(0);
    } else if starts[0] != 0 {
        // Leading trivia joins the first item's chunk.
        starts[0] = 0;
    }
    let mut chunks = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(src.len() as u32);
        let span = Span::new(start, end);
        let mut hasher = DefaultHasher::new();
        span.slice(src).hash(&mut hasher);
        chunks.push(Chunk {
            span,
            hash: hasher.finish(),
        });
    }
    chunks
}

/// A parsed chunk held by the document: items at absolute offsets.
#[derive(Debug, Clone)]
struct ParsedChunk {
    hash: u64,
    /// Absolute start offset the items are currently based at.
    start: u32,
    /// The chunk's exact text (hash matches are confirmed against it).
    text: Box<str>,
    items: Vec<Item>,
    /// Diagnostics, chunk-relative.
    diagnostics: Vec<Diagnostic>,
}

/// An item-granular incremental parser that owns the current document.
#[derive(Debug, Clone, Default)]
pub struct IncrementalParser {
    chunks: Vec<ParsedChunk>,
    /// Chunks moved out of the previous document this parse.
    pub reused: u64,
    /// Chunks parsed from scratch over the parser's life.
    pub parsed: u64,
}

impl IncrementalParser {
    /// A parser with an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse `src` incrementally and return a fresh [`ParseResult`]
    /// equal to `parse_program(src)`. Prefer [`IncrementalParser::parse_ref`]
    /// when a borrow suffices — it avoids cloning the unchanged items.
    pub fn parse(&mut self, src: &str) -> ParseResult {
        self.reparse(src);
        ParseResult {
            program: self.assemble_program(src),
            diagnostics: self.assemble_diags(),
        }
    }

    /// Parse `src` incrementally; the returned references borrow the
    /// parser-owned document (zero clones for unchanged items).
    pub fn parse_ref(&mut self, src: &str) -> (Program, Diagnostics) {
        // `Program` holds items by value, so "borrowing" means handing
        // out the assembled program; the per-chunk storage keeps
        // ownership across calls via take/put-back in `reparse`.
        self.reparse(src);
        (self.assemble_program(src), self.assemble_diags())
    }

    /// Re-synchronize the owned document with `src` (parsing only the
    /// changed chunks) without assembling a program. Pair with
    /// [`IncrementalParser::with_program`] / [`IncrementalParser::diagnostics`]
    /// for the zero-clone pipeline.
    pub fn update(&mut self, src: &str) {
        self.reparse(src);
    }

    /// The current document's diagnostics (absolute spans).
    pub fn diagnostics(&self) -> Diagnostics {
        self.assemble_diags()
    }

    fn reparse(&mut self, src: &str) {
        let new_chunks = chunk_items(src);
        // Index the old chunks by hash (duplicates queue up in order).
        let mut by_hash: HashMap<u64, Vec<ParsedChunk>> = HashMap::new();
        for chunk in self.chunks.drain(..) {
            by_hash.entry(chunk.hash).or_default().push(chunk);
        }
        let mut rebuilt = Vec::with_capacity(new_chunks.len());
        for chunk in &new_chunks {
            let text = chunk.span.slice(src);
            let reusable = by_hash.get_mut(&chunk.hash).and_then(|queue| {
                let pos = queue.iter().position(|c| &*c.text == text)?;
                Some(queue.swap_remove(pos))
            });
            match reusable {
                Some(mut old) => {
                    self.reused += 1;
                    let delta = i64::from(chunk.span.start) - i64::from(old.start);
                    if delta != 0 {
                        for item in &mut old.items {
                            rebase_item(item, delta);
                        }
                        old.start = chunk.span.start;
                    }
                    rebuilt.push(old);
                }
                None => {
                    self.parsed += 1;
                    let parsed = parse_program(text);
                    let mut items = parsed.program.items;
                    let delta = i64::from(chunk.span.start);
                    for item in &mut items {
                        rebase_item(item, delta);
                    }
                    rebuilt.push(ParsedChunk {
                        hash: chunk.hash,
                        start: chunk.span.start,
                        text: Box::from(text),
                        items,
                        diagnostics: parsed.diagnostics.into_vec(),
                    });
                }
            }
        }
        self.chunks = rebuilt;
    }

    fn assemble_program(&self, src: &str) -> Program {
        let mut items = Vec::new();
        for chunk in &self.chunks {
            items.extend(chunk.items.iter().cloned());
        }
        Program {
            items,
            span: Span::new(0, src.len() as u32),
        }
    }

    /// Lower/typecheck straight off the owned document without cloning
    /// items: calls `f` with a program view assembled by move, then puts
    /// the items back.
    pub fn with_program<R>(&mut self, src: &str, f: impl FnOnce(&Program) -> R) -> R {
        let mut items = Vec::new();
        let mut counts = Vec::with_capacity(self.chunks.len());
        for chunk in &mut self.chunks {
            counts.push(chunk.items.len());
            items.append(&mut chunk.items);
        }
        let program = Program {
            items,
            span: Span::new(0, src.len() as u32),
        };
        let result = f(&program);
        // Put the items back where they came from.
        let mut iter = program.items.into_iter();
        for (chunk, count) in self.chunks.iter_mut().zip(counts) {
            chunk.items.extend(iter.by_ref().take(count));
        }
        result
    }

    fn assemble_diags(&self) -> Diagnostics {
        let mut diagnostics = Diagnostics::new();
        for chunk in &self.chunks {
            for diag in &chunk.diagnostics {
                let delta = i64::from(chunk.start);
                let mut d = diag.clone();
                d.span = Span::new(
                    (i64::from(d.span.start) + delta) as u32,
                    (i64::from(d.span.end) + delta) as u32,
                );
                for (nspan, _) in &mut d.notes {
                    *nspan = Span::new(
                        (i64::from(nspan.start) + delta) as u32,
                        (i64::from(nspan.end) + delta) as u32,
                    );
                }
                diagnostics.push(d);
            }
        }
        diagnostics
    }

    /// Whether the current document has parse errors.
    pub fn has_errors(&self) -> bool {
        self.chunks.iter().any(|c| {
            c.diagnostics
                .iter()
                .any(|d| d.severity == crate::Severity::Error)
        })
    }

    /// Drop the document (e.g. on a project switch).
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "// leading comment\n\
        global count : number = 0\n\n\
        fun double(x : number) : number pure { x * 2 }\n\n\
        page start() {\n    init { count := double(count); }\n    \
        render { boxed { post count; } }\n}\n";

    #[test]
    fn chunking_finds_every_item() {
        let chunks = chunk_items(SRC);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].span.start, 0, "leading trivia joins chunk 0");
        assert!(SRC[chunks[1].span.start as usize..].starts_with("fun double"));
        assert!(SRC[chunks[2].span.start as usize..].starts_with("page start"));
        // Chunks tile the source exactly.
        assert_eq!(
            chunks.last().expect("nonempty").span.end as usize,
            SRC.len()
        );
    }

    #[test]
    fn nested_keywords_do_not_split_chunks() {
        // `render`/`page` words inside strings or bodies must not split.
        let src = "page start() {\n    render { post \"fun page global\"; }\n}\n";
        assert_eq!(chunk_items(src).len(), 1);
    }

    #[test]
    fn incremental_equals_full_parse() {
        let mut inc = IncrementalParser::new();
        let first = inc.parse(SRC);
        let full = parse_program(SRC);
        assert_eq!(first.program, full.program);
        assert_eq!(inc.parsed, 3);

        // Edit only the fun's body: other chunks re-use.
        let edited = SRC.replace("x * 2", "x * 3 + 1");
        let second = inc.parse(&edited);
        let full = parse_program(&edited);
        assert_eq!(second.program, full.program, "spans must match exactly");
        assert_eq!(inc.parsed, 4, "only the changed chunk re-parsed");
        assert_eq!(inc.reused, 2);
    }

    #[test]
    fn growing_an_early_item_rebases_later_ones() {
        let mut inc = IncrementalParser::new();
        inc.parse(SRC);
        let edited = SRC.replace(
            "global count : number = 0",
            "global count : number = 100 + 200 + 300",
        );
        let incremental = inc.parse(&edited);
        let full = parse_program(&edited);
        assert_eq!(incremental.program, full.program);
        // The page chunk (unchanged text, shifted offset) was reused.
        assert_eq!(inc.reused, 2);
    }

    #[test]
    fn parse_errors_are_rebased_too() {
        let mut inc = IncrementalParser::new();
        let broken = SRC.replace("x * 2", "x * ");
        let incremental = inc.parse(&broken);
        let full = parse_program(&broken);
        assert!(!incremental.is_ok());
        assert_eq!(
            incremental.diagnostics.into_vec(),
            full.diagnostics.into_vec()
        );
    }

    #[test]
    fn deleting_and_reordering_items_works() {
        let mut inc = IncrementalParser::new();
        inc.parse(SRC);
        // Move the fun below the page.
        let reordered = "// leading comment\n\
            global count : number = 0\n\n\
            page start() {\n    init { count := double(count); }\n    \
            render { boxed { post count; } }\n}\n\n\
            fun double(x : number) : number pure { x * 2 }\n";
        let incremental = inc.parse(reordered);
        let full = parse_program(reordered);
        assert_eq!(incremental.program, full.program);
    }

    #[test]
    fn with_program_moves_and_restores_items() {
        let mut inc = IncrementalParser::new();
        inc.parse(SRC);
        let count = inc.with_program(SRC, |p| p.items.len());
        assert_eq!(count, 3);
        // The document is intact afterwards.
        let again = inc.parse(SRC);
        assert_eq!(again.program.items.len(), 3);
        assert_eq!(inc.reused, 3, "nothing re-parsed after with_program");
    }
}
