//! Hand-written lexer for the surface language.
//!
//! Produces a `Vec<Token>` in one pass; lexical errors are reported as
//! [`Diagnostic`]s and lexing continues past them, so the editor can keep
//! showing the program while the user types.

use crate::diag::{Diagnostic, Diagnostics};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lex `src` into tokens, appending problems to `diags`.
///
/// Always returns a token stream terminated by [`TokenKind::Eof`], even on
/// error, so the parser can rely on termination.
pub fn lex(src: &str, diags: &mut Diagnostics) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
        diags,
    }
    .run()
}

struct Lexer<'s, 'd> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: &'d mut Diagnostics,
}

impl Lexer<'_, '_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                break;
            }
            let start = self.pos as u32;
            let b = self.bytes[self.pos];
            match b {
                b'0'..=b'9' => self.number(start),
                b'"' => self.string(start),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(start),
                _ => self.punct(start),
            }
        }
        let end = self.src.len() as u32;
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::point(end)));
        self.tokens
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    fn emit(&mut self, kind: TokenKind, start: u32) {
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos as u32)));
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek(0) {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == b'*' => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    let mut depth = 1u32;
                    while self.pos < self.bytes.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.pos += 2;
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.pos += 2;
                        } else {
                            self.pos += 1;
                        }
                    }
                    if depth > 0 {
                        self.diags.push(Diagnostic::error(
                            Span::new(start, self.pos as u32),
                            "unterminated block comment",
                        ));
                    }
                }
                _ => break,
            }
        }
    }

    fn number(&mut self, start: u32) {
        while self.peek(0).is_ascii_digit() {
            self.pos += 1;
        }
        // A fractional part only if `.` is followed by a digit, so that
        // `1..n` (range) and `t.1` (projection) lex correctly.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.pos += 1;
            while self.peek(0).is_ascii_digit() {
                self.pos += 1;
            }
        }
        let text = &self.src[start as usize..self.pos];
        match text.parse::<f64>() {
            Ok(n) => self.emit(TokenKind::Number(n), start),
            Err(_) => {
                self.diags.push(Diagnostic::error(
                    Span::new(start, self.pos as u32),
                    format!("invalid number literal `{text}`"),
                ));
                self.emit(TokenKind::Number(0.0), start);
            }
        }
    }

    fn string(&mut self, start: u32) {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.peek(0) {
                0 | b'\n' => {
                    self.diags.push(Diagnostic::error(
                        Span::new(start, self.pos as u32),
                        "unterminated string literal",
                    ));
                    break;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => {
                    let esc_start = self.pos as u32;
                    self.pos += 1;
                    match self.peek(0) {
                        b'n' => {
                            value.push('\n');
                            self.pos += 1;
                        }
                        b't' => {
                            value.push('\t');
                            self.pos += 1;
                        }
                        b'"' => {
                            value.push('"');
                            self.pos += 1;
                        }
                        b'\\' => {
                            value.push('\\');
                            self.pos += 1;
                        }
                        0 => {
                            // Input ends right after the backslash; the
                            // unterminated-string branch reports it.
                        }
                        _ => {
                            // Step over one whole UTF-8 scalar so the
                            // cursor stays on a char boundary.
                            let ch = self.src[self.pos..].chars().next().expect("in-bounds char");
                            self.pos += ch.len_utf8();
                            self.diags.push(Diagnostic::error(
                                Span::new(esc_start, self.pos as u32),
                                format!("unknown escape `\\{ch}`"),
                            ));
                        }
                    }
                }
                _ => {
                    // Advance over one UTF-8 scalar.
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("in-bounds char");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.emit(TokenKind::Str(value), start);
    }

    fn ident(&mut self, start: u32) {
        while {
            let b = self.peek(0);
            b == b'_' || b.is_ascii_alphanumeric()
        } {
            self.pos += 1;
        }
        let word = &self.src[start as usize..self.pos];
        let kind = TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()));
        self.emit(kind, start);
    }

    fn punct(&mut self, start: u32) {
        use TokenKind::*;
        let b = self.peek(0);
        let b2 = self.peek(1);
        let (kind, len) = match (b, b2) {
            (b':', b'=') => (ColonEq, 2),
            (b'=', b'=') => (EqEq, 2),
            (b'!', b'=') => (BangEq, 2),
            (b'<', b'=') => (Le, 2),
            (b'>', b'=') => (Ge, 2),
            (b'+', b'+') => (PlusPlus, 2),
            (b'&', b'&') => (AmpAmp, 2),
            (b'|', b'|') => (PipePipe, 2),
            (b'.', b'.') => (DotDot, 2),
            (b'-', b'>') => (Arrow, 2),
            (b'(', _) => (LParen, 1),
            (b')', _) => (RParen, 1),
            (b'{', _) => (LBrace, 1),
            (b'}', _) => (RBrace, 1),
            (b'[', _) => (LBracket, 1),
            (b']', _) => (RBracket, 1),
            (b',', _) => (Comma, 1),
            (b';', _) => (Semi, 1),
            (b':', _) => (Colon, 1),
            (b'=', _) => (Eq, 1),
            (b'<', _) => (Lt, 1),
            (b'>', _) => (Gt, 1),
            (b'+', _) => (Plus, 1),
            (b'-', _) => (Minus, 1),
            (b'*', _) => (Star, 1),
            (b'/', _) => (Slash, 1),
            (b'%', _) => (Percent, 1),
            (b'!', _) => (Bang, 1),
            (b'.', _) => (Dot, 1),
            _ => {
                let rest = &self.src[self.pos..];
                let ch = rest.chars().next().expect("in-bounds char");
                self.pos += ch.len_utf8();
                self.diags.push(Diagnostic::error(
                    Span::new(start, self.pos as u32),
                    format!("unexpected character `{ch}`"),
                ));
                return;
            }
        };
        self.pos += len;
        self.emit(kind, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut diags = Diagnostics::new();
        let toks = lex(src, &mut diags);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_program_shape() {
        let ks = kinds("global count : number = 0");
        assert_eq!(
            ks,
            vec![
                Global,
                Ident("count".into()),
                Colon,
                TyNumber,
                Eq,
                Number(0.0),
                Eof
            ]
        );
    }

    #[test]
    fn distinguishes_range_projection_and_decimal() {
        assert_eq!(
            kinds("0 .. 10"),
            vec![Number(0.0), DotDot, Number(10.0), Eof]
        );
        assert_eq!(kinds("1..3"), vec![Number(1.0), DotDot, Number(3.0), Eof]);
        assert_eq!(kinds("t.1"), vec![Ident("t".into()), Dot, Number(1.0), Eof]);
        assert_eq!(kinds("1.5"), vec![Number(1.5), Eof]);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds(":= == != <= >= ++ && || -> .."),
            vec![ColonEq, EqEq, BangEq, Le, Ge, PlusPlus, AmpAmp, PipePipe, Arrow, DotDot, Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\n\"b\\""#), vec![Str("a\n\"b\\".into()), Eof]);
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            kinds("1 // line\n/* block /* nested */ */ 2"),
            vec![Number(1.0), Number(2.0), Eof]
        );
    }

    #[test]
    fn error_recovery_continues() {
        let mut diags = Diagnostics::new();
        let toks = lex("a ` b", &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(toks.len(), 3); // a, b, eof
    }

    #[test]
    fn unterminated_string_reports() {
        let mut diags = Diagnostics::new();
        let toks = lex("\"abc", &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(matches!(toks[0].kind, Str(_)));
    }

    #[test]
    fn spans_are_correct() {
        let mut diags = Diagnostics::new();
        let toks = lex("ab cd", &mut diags);
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
