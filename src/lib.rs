//! # its-alive
//!
//! A from-scratch Rust reproduction of *"It's Alive! Continuous
//! Feedback in UI Programming"* (Burckhardt et al., PLDI 2013): a live
//! programming system for an imperative UI language in which render
//! code is separated from state-mutating code by a type-and-effect
//! system, so the display can be rebuilt on every code edit without
//! restarting the program.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`syntax`] — lexer, parser, AST, pretty-printer, text edits;
//! * [`core`] — the formal model: type-and-effect system, small-step
//!   and big-step semantics, the system transition relation (STARTUP /
//!   TAP / BACK / THUNK / PUSH / POP / RENDER / UPDATE), state fix-up;
//! * [`ui`] — layout, text rendering, hit-testing;
//! * [`live`] — live sessions, UI↔code navigation, direct
//!   manipulation, render memoization;
//! * [`obs`] — zero-dependency metrics and span tracing (counters,
//!   gauges, latency histograms, serializable snapshots);
//! * [`baseline`] — edit-compile-run, fix-and-continue, and
//!   retained-MVC baselines;
//! * [`apps`] — demo programs, including the paper's mortgage
//!   calculator.
//!
//! # Quick start
//!
//! ```
//! use its_alive::live::LiveSession;
//!
//! let mut session = LiveSession::new(r#"
//!     global greeting : string = "hello"
//!     page start() {
//!         render { boxed { post greeting ++ ", world"; } }
//!     }
//! "#).expect("compiles");
//! assert_eq!(session.live_view(), "hello, world\n");
//!
//! // Edit the running program; the model survives, the view updates.
//! let edited = session.source().replace(", world", "!");
//! assert!(session.edit_source(&edited).is_applied());
//! assert_eq!(session.live_view(), "hello!\n");
//! ```

#![warn(missing_docs)]

pub use alive_apps as apps;
pub use alive_baseline as baseline;
pub use alive_core as core;
pub use alive_live as live;
pub use alive_obs as obs;
pub use alive_syntax as syntax;
pub use alive_ui as ui;
