//! The paper's running example, end to end: the mortgage calculator of
//! Figures 1, 3, 4, 5, with the live improvements I1–I3 of §2/§3.1
//! applied while the program runs.
//!
//! Run with `cargo run --example mortgage_live`.

use its_alive::apps::mortgage;
use its_alive::live::LiveSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start page (Figure 1, left): the init body downloads listings
    // (simulated web request) and the render body lays them out.
    let src = mortgage::mortgage_src(5);
    let mut session = LiveSession::new(&src)?;
    println!("=== start page (Figure 1, left) ===");
    print!("{}", session.live_view());
    let cost = session.system().cost();
    println!(
        "\n(simulated download: {} request(s), {:.0} ms simulated latency)",
        cost.prim.web_requests, cost.prim.simulated_ms
    );

    // Tap the second listing: push the detail page (Figure 1, right).
    session.tap_path(&[1, 1])?;
    println!("\n=== detail page (Figure 1, right) ===");
    print!("{}", session.live_view());

    // The term box is editable: change the mortgage term to 15 years.
    // (Path [2,0] = third top-level box, first child.)
    session.edit_box(&[2, 0], "15")?;
    println!("\n=== after editing the term to 15 years ===");
    print!("{}", session.live_view());

    // Improvement I2: print the balance in dollars and cents — a live
    // edit applied WITHOUT leaving the detail page. The paper: "balance
    // printing is updated for all amortization table rows as soon as we
    // complete the last line of this modification."
    let improved = mortgage::apply_improvement_i2(session.source());
    assert!(session.edit_source(&improved).is_applied());
    println!("\n=== after improvement I2 (dollars and cents), still on the detail page ===");
    print!("{}", session.live_view());

    // Improvement I3: highlight every fifth amortization row.
    let improved = mortgage::apply_improvement_i3(session.source());
    assert!(session.edit_source(&improved).is_applied());
    println!("\n=== after improvement I3 (every fifth row highlighted) ===");
    print!("{}", session.live_view());

    // Back to the start page; improvement I1 tweaks the entry margins.
    session.back()?;
    let improved = mortgage::apply_improvement_i1(session.source());
    assert!(session.edit_source(&improved).is_applied());
    println!("\n=== start page after improvement I1 (margins) ===");
    print!("{}", session.live_view());

    let (applied, rejected) = session.update_counts();
    println!("\nlive session summary: {applied} edits applied, {rejected} rejected,");
    println!(
        "total simulated web latency: {:.0} ms across {} request(s) — \
         the download never re-ran.",
        session.system().cost().prim.simulated_ms,
        session.system().cost().prim.web_requests
    );
    Ok(())
}
