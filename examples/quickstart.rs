//! Quickstart: a counter app, live-edited while it runs.
//!
//! Run with `cargo run --example quickstart`.

use its_alive::core::system::StepKind;
use its_alive::live::{box_source_at, boxes_for_cursor, LiveSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Start a live session from source text.
    let mut session = LiveSession::new(its_alive::apps::COUNTER_SRC)?;
    println!("=== initial live view ===");
    print!("{}", session.live_view());

    // 2. Interact: tap the "+1" button twice.
    session.tap_path(&[1])?;
    session.tap_path(&[1])?;
    println!("\n=== after two taps ===");
    print!("{}", session.live_view());

    // 3. Live edit: change the label while the program runs. The count
    //    (model state) survives — only the view re-renders.
    let edited = session.source().replace("count: ", "taps so far: ");
    let outcome = session.edit_source(&edited);
    assert!(outcome.is_applied());
    println!("\n=== after live edit (state preserved!) ===");
    print!("{}", session.live_view());

    // 4. UI -> code navigation: which statement created the first box?
    let display = session.display_tree().ok_or("no view")?;
    let span = its_alive::live::span_for_box(session.system().program(), &display, &[0])
        .expect("box came from a boxed statement");
    println!("\n=== the box at path [0] was created by ===");
    println!("{}", span.slice(session.source()));

    // 5. Code -> UI navigation: cursor inside that statement selects
    //    the box(es) it created.
    let cursor = span.start + 1;
    let id = box_source_at(session.system().program(), cursor).expect("in a boxed stmt");
    let boxes = boxes_for_cursor(session.system().program(), &display, cursor);
    println!("\nstatement {id:?} currently renders boxes at paths {boxes:?}");

    // 6. A broken edit is rejected; the program keeps running.
    let broken = session.source().replace("count + 1", "count + ");
    let outcome = session.edit_source(&broken);
    assert!(!outcome.is_applied());
    println!("\n=== broken edit rejected; still alive ===");
    print!("{}", session.live_view());

    // 7. Under the hood: the paper's transition system is observable.
    session.system_mut().back();
    let kinds: Vec<StepKind> = session.system_mut().run_to_stable()?.into_iter().collect();
    println!("\ntransitions after BACK: {kinds:?}");
    Ok(())
}
