//! Figure 2, reproduced: the split-screen live programming view with
//! bidirectional selection between the rendered UI and the code.
//!
//! Run with `cargo run --example figure2`.

use its_alive::live::{split_view, LiveSession, Selection, SplitViewOptions};

const SRC: &str = r#"global items : list string = ["butter", "milk", "rye bread"]

page start() {
    render {
        boxed {
            post "Groceries";
            box.background := colors.light_blue;
        }
        foreach item in items {
            boxed {
                post "* " ++ item;
                box.margin := 1;
            }
        }
    }
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = LiveSession::new(SRC)?;
    let options = SplitViewOptions {
        width: 100,
        live_pane: 26,
        ansi: false,
        zoom: 1,
    };

    println!("— no selection —\n");
    print!("{}", split_view(&mut session, &Selection::None, options));

    // "Selecting a box in the left live view causes the corresponding
    // boxed statement to be selected in the right code view" (Fig. 2).
    println!("\n— the user taps the second grocery row (box [2]) —\n");
    print!(
        "{}",
        split_view(&mut session, &Selection::Box(vec![2]), options)
    );

    // "...and vice versa": the cursor in the loop's boxed statement
    // collectively selects every box it created.
    let cursor = session.source().find("post \"* \"").expect("in source") as u32;
    println!("\n— the user puts the cursor inside the loop's boxed statement —\n");
    print!(
        "{}",
        split_view(&mut session, &Selection::Cursor(cursor), options)
    );
    Ok(())
}
