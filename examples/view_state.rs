//! View-state encapsulation (`remember`) — the paper's §7 future work.
//!
//! §5: "the value of a slider widget must be defined as a global
//! variable, which is then passed into render code". With `remember`,
//! each slider instance owns its value; the model stays clean.
//!
//! Run with `cargo run --example view_state`.

use its_alive::live::LiveSession;

const SRC: &str = r##"// Three independent sliders, no globals at all.
fun bar(value : number) : string pure {
    str.repeat("#", value) ++ str.repeat(".", 10 - value)
}

page start() {
    render {
        for i in 0 .. 3 {
            boxed {
                box.horizontal := true;
                boxed {
                    remember level : number = 5;
                    boxed { post "[" ++ bar(level) ++ "]"; }
                    boxed {
                        post " - ";
                        on tap { if level > 0 { level := level - 1; } }
                    }
                    boxed {
                        post " + ";
                        on tap { if level < 10 { level := level + 1; } }
                    }
                }
                boxed { post "slider " ++ i; }
            }
        }
    }
}"##;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = LiveSession::new(SRC)?;
    println!("=== three sliders, each with private state ===");
    print!("{}", session.live_view());
    println!(
        "\n(model store: {} — empty! the values live in {} view-state slots)",
        session.system().store(),
        session.system().widgets().len()
    );

    // Drag slider 1 down twice, slider 2 up three times.
    for _ in 0..2 {
        session.tap_path(&[1, 0, 1])?; // second row, inner box, "-"
    }
    for _ in 0..3 {
        session.tap_path(&[2, 0, 2])?; // third row, inner box, "+"
    }
    println!("\n=== after dragging two sliders independently ===");
    print!("{}", session.live_view());

    // A live edit: restyle the bar while the sliders hold their values.
    let edited = session.source().replace("\"#\"", "\"=\"");
    assert!(session.edit_source(&edited).is_applied());
    println!("\n=== after a live edit (view state resets with the view's code) ===");
    print!("{}", session.live_view());
    println!(
        "\nper §4.2 discipline, UPDATE cleared the slots: {} slots re-initialized",
        session.system().widgets().len()
    );
    Ok(())
}
