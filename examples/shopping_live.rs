//! A second realistic app: the shopping list, driven by screen
//! coordinates (hit-testing) rather than box paths, with a live edit
//! mid-session and the §5 render cache enabled.
//!
//! Run with `cargo run --example shopping_live`.

use its_alive::apps::SHOPPING_SRC;
use its_alive::live::LiveSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = LiveSession::with_memo(SHOPPING_SRC)?;
    println!("=== shopping list ===");
    print!("{}", session.live_view());

    // Find the "eggs" row on screen and tap it by coordinates.
    let view = session.live_view();
    let eggs_row = view
        .lines()
        .position(|l| l.contains("eggs"))
        .expect("visible") as i32;
    assert!(session.tap_at(1, eggs_row)?);
    println!("\n=== eggs detail ===");
    print!("{}", session.live_view());

    // Buy them (tap the [ buy ] button by coordinates).
    let view = session.live_view();
    let buy_row = view
        .lines()
        .position(|l| l.contains("[ buy ]"))
        .expect("visible") as i32;
    assert!(session.tap_at(1, buy_row)?);
    println!("\n=== back on the list (12 bought) ===");
    print!("{}", session.live_view());

    // Live edit while shopping: show the bought count more loudly.
    let edited = session.source().replace(
        "\"bought so far: \" ++ bought",
        "\"BOUGHT: \" ++ bought ++ \" units\"",
    );
    assert!(session.edit_source(&edited).is_applied());
    println!("\n=== after live edit (model intact) ===");
    print!("{}", session.live_view());

    // Add twice; the memo cache reuses untouched rows.
    let view = session.live_view();
    let add_row = view
        .lines()
        .position(|l| l.contains("add apples"))
        .expect("visible") as i32;
    assert!(session.tap_at(1, add_row)?);
    if let Some(stats) = session.memo_stats() {
        println!(
            "\nrender cache: {} hits, {} misses ({} statically uncacheable)",
            stats.hits, stats.misses, stats.uncacheable
        );
    }
    Ok(())
}
