//! Direct manipulation (paper §3): select a box in the live view, change
//! its attributes from a "property menu", and watch the change be
//! enshrined in the code — then twiddle the value live, like the
//! paper's margin example (improvement I1). Finishes with bidirectional
//! evaluation: edit a rendered *value* and the change is inverted
//! through its provenance into a ranked menu of source repairs.
//!
//! Run with `cargo run --example direct_manipulation`.

use its_alive::core::Attr;
use its_alive::live::{attribute_edit, span_for_box, LiveSession};
use its_alive::ui::{hit_stack, layout, Point};

const SRC: &str = r#"global unread : number = 40
page start() {
    render {
        boxed {
            post "Inbox";
        }
        boxed {
            post "compose";
        }
        boxed {
            post (unread + 2) ++ " unread messages";
        }
    }
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = LiveSession::new(SRC)?;
    println!("=== live view ===");
    print!("{}", session.live_view());

    // The user taps the screen at row 1 ("compose"). Nested selection
    // (§5): the hit stack lists every box under the finger.
    let display = session.display_tree().ok_or("no view")?;
    let tree = layout(&display);
    let stack = hit_stack(&tree, Point::new(0, 1));
    println!("\nhit stack at (0,1): {stack:?}");
    let path = stack.last().expect("tapped a box").clone();

    // Selecting the box highlights its statement in the code view.
    let span = span_for_box(session.system().program(), &display, &path)
        .expect("created by a boxed statement");
    println!("\nselected statement:\n{}", span.slice(session.source()));
    let id = display
        .descendant(&path)
        .expect("box")
        .source
        .expect("has id");

    // The user picks "border" from the property menu: a statement is
    // INSERTED into the code.
    let edit = attribute_edit(
        session.source(),
        session.system().program(),
        id,
        Attr::Border,
        "1",
    )?;
    println!("\ncode edit: {edit}");
    session.apply_text_edits(&[edit])?;
    println!("\n=== live view after adding a border ===");
    print!("{}", session.live_view());

    // Now the margin, twiddled twice — the second manipulation REWRITES
    // the value in place instead of inserting a duplicate statement.
    for margin in ["1", "3"] {
        let display = session.display_tree().ok_or("no view")?;
        let id = display.descendant(&path).expect("box").source.expect("id");
        let edit = attribute_edit(
            session.source(),
            session.system().program(),
            id,
            Attr::Margin,
            margin,
        )?;
        session.apply_text_edits(&[edit])?;
        println!("\n=== margin := {margin} ===");
        print!("{}", session.live_view());
    }

    // Bidirectional evaluation: the user selects the rendered unread
    // counter and types the value they want to see. The leaf's
    // provenance is inverted into ranked candidate repairs — the best
    // one rewrites the most local literal, leaving the computation (and
    // the `unread` global) intact.
    println!("\n=== value repair: \"42 unread messages\" -> \"41 unread messages\" ===");
    let repairs = session.repairs_at(&[2], 0, "41 unread messages")?;
    for (i, candidate) in repairs.iter().enumerate() {
        println!("  [{i}] {}", candidate.description);
    }
    assert!(session.apply_repair(0)?.is_applied());
    println!("\n=== live view after the repair ===");
    print!("{}", session.live_view());

    println!("\n=== final code (the manipulations are enshrined) ===");
    println!("{}", session.source());
    assert_eq!(session.source().matches("box.margin").count(), 1);
    assert!(session.source().contains("(unread + 1)"));
    Ok(())
}
