//! Conway's Game of Life, live-edited mid-simulation: run a glider,
//! then change the evolution *rule* while the organism is alive.
//!
//! Run with `cargo run --example game_of_life`.

use its_alive::apps::life::life_src;
use its_alive::live::LiveSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = LiveSession::new(&life_src(10))?;
    println!("=== generation 0 (tap the board to step) ===");
    print!("{}", session.live_view());

    for _ in 0..3 {
        session.tap_path(&[1])?;
    }
    println!("\n=== generation 3 ===");
    print!("{}", session.live_view());

    // Live edit: switch B3/S23 to "HighLife" (B36/S23) while running.
    // The grid (model) survives; only the rule changes.
    let highlife = session.source().replace(
        "else if !alive && around == 3 { 1 }",
        "else if !alive && (around == 3 || around == 6) { 1 }",
    );
    assert!(session.edit_source(&highlife).is_applied());
    println!("\n=== rule changed to HighLife (B36/S23) mid-run; grid preserved ===");
    for _ in 0..3 {
        session.tap_path(&[1])?;
    }
    println!("=== generation 6, three HighLife steps later ===");
    print!("{}", session.live_view());
    println!(
        "\n{} evaluation steps total; the simulation never restarted.",
        session.system().cost().steps
    );
    Ok(())
}
