//! The formal model, visibly at work: print the Figure 8 reduction
//! derivation of a small program, step by step, and the Figure 9
//! system-transition trace of a user session.
//!
//! Run with `cargo run --example formal_model`.

use its_alive::core::event::EventQueue;
use its_alive::core::pretty::pretty_expr;
use its_alive::core::smallstep::{self, Stepper};
use its_alive::core::store::Store;
use its_alive::core::system::{StepKind, System};
use its_alive::core::{compile, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(
        r#"
        global apr : number = 5
        fun rate() : number pure { apr / 1200 }
        page start() {
            init { apr := apr + 1; }
            render {
                boxed {
                    post "rate " ++ rate();
                    box.margin := 1;
                }
            }
        }
        "#,
    )
    .expect("compiles");
    let page = program.page("start").expect("page");

    // ---- Figure 8, →s: the init body, rule by rule ----
    let mut store = Store::new();
    let mut queue = EventQueue::new();
    let out = smallstep::eval_state_traced(&program, &mut store, &mut queue, 10_000, &page.init)?;
    println!("=== →s derivation of the init body `apr := apr + 1` ===");
    for (i, rule) in out.trace.as_deref().unwrap_or_default().iter().enumerate() {
        println!("  step {:>2}: ({rule})", i + 1);
    }
    println!("  store afterwards: {}", store);

    // ---- Figure 8, →r: the render body ----
    let out = smallstep::eval_render_traced(&program, &mut store, 10_000, &page.render)?;
    println!("\n=== →r derivation of the render body ===");
    for (i, rule) in out.trace.as_deref().unwrap_or_default().iter().enumerate() {
        println!("  step {:>2}: ({rule})", i + 1);
    }
    let root = out.root.expect("render builds content");
    println!(
        "  display B: {} box(es), first leaf = {:?}",
        root.box_count(),
        root.descendant(&[0])
            .and_then(|b| b.leaves().next())
            .map(Value::display_text)
    );

    // ---- The stepper: intermediate expressions, rule by rule ----
    println!("\n=== single-stepping `rate() * 1200` (the §5 debugger angle) ===");
    let probe = compile(
        r#"
        global apr : number = 6
        fun rate() : number pure { apr / 1200 }
        fun probe() : number pure { rate() * 1200 }
        page start() { render { } }
        "#,
    )
    .expect("compiles");
    let body = (*probe.fun("probe").expect("probe").body).clone();
    let mut store = Store::new();
    let mut stepper = Stepper::new_pure(&probe, &mut store, 1_000, body);
    println!("  {:<14} {}", "", pretty_expr(stepper.current(), 6));
    while !stepper.is_done() {
        let rule = stepper.step()?.expect("applied a rule");
        println!(
            "  {:<14} {}",
            format!("({rule})"),
            pretty_expr(stepper.current(), 6)
        );
    }
    println!("  value: {}", stepper.value().expect("done"));

    // ---- Figure 9: the →g transition sequence of a session ----
    println!("\n=== →g transitions of a whole session ===");
    let mut system = System::new(program);
    let log = |system: &mut System| -> Result<(), Box<dyn std::error::Error>> {
        loop {
            let before = format!("{system}");
            let kind = system.step()?;
            if kind == StepKind::Stable {
                println!("  (stable)  {system}");
                return Ok(());
            }
            println!("  {kind:?}: {before}");
        }
    };
    log(&mut system)?;
    println!("  -- user taps nothing; back button instead --");
    system.back();
    log(&mut system)?;
    Ok(())
}
