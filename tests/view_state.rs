//! The `remember` extension — the paper's §7 future work ("support for
//! state encapsulation in the view") made concrete. §5 names the
//! problem: "the value of a slider widget must be defined as a global
//! variable". Here each box instance owns its state.

use its_alive::core::state_typing::assert_well_typed;
use its_alive::core::{compile, Value};
use its_alive::live::{EditOutcome, LiveSession};

/// Three independent counters from ONE loop body — zero globals.
const COUNTERS: &str = r#"
page start() {
    render {
        for i in 0 .. 3 {
            boxed {
                remember clicks : number = 0;
                post "item " ++ i ++ ": " ++ clicks;
                on tap { clicks := clicks + 1; }
            }
        }
    }
}
"#;

#[test]
fn each_box_instance_keeps_its_own_state() {
    let mut s = LiveSession::new(COUNTERS).expect("compiles and starts");
    assert_eq!(s.live_view(), "item 0: 0\nitem 1: 0\nitem 2: 0\n");
    s.tap_path(&[1]).expect("tap middle");
    s.tap_path(&[1]).expect("tap middle again");
    s.tap_path(&[2]).expect("tap last");
    assert_eq!(s.live_view(), "item 0: 0\nitem 1: 2\nitem 2: 1\n");
    // The model (store) is untouched — this is view state.
    assert!(s.system().store().is_empty());
    assert_eq!(s.system().widgets().len(), 3);
    assert_well_typed(s.system());
}

#[test]
fn view_state_survives_re_render_and_navigation() {
    let src = r#"
        page start() {
            render {
                boxed {
                    remember n : number = 10;
                    post "n = " ++ n;
                    on tap { n := n + 1; }
                }
                boxed { post "away"; on tap { push other(); } }
            }
        }
        page other() {
            render { boxed { post "elsewhere"; on tap { pop; } } }
        }
    "#;
    let mut s = LiveSession::new(src).expect("starts");
    s.tap_path(&[0]).expect("bump");
    assert!(s.live_view().contains("n = 11"));
    // Navigate away and back: the slot persists (like scroll state).
    s.tap_path(&[1]).expect("away");
    assert!(s.live_view().contains("elsewhere"));
    s.tap_path(&[0]).expect("back");
    assert!(s.live_view().contains("n = 11"));
}

#[test]
fn code_update_clears_view_state() {
    let mut s = LiveSession::new(COUNTERS).expect("starts");
    s.tap_path(&[0]).expect("tap");
    assert!(s.live_view().contains("item 0: 1"));
    let edited = COUNTERS.replace("item ", "entry ");
    let outcome = s.edit_source(&edited);
    assert!(matches!(outcome, EditOutcome::Applied(_)));
    // View state died with the old view code; slots re-initialize.
    assert_eq!(s.live_view(), "entry 0: 0\nentry 1: 0\nentry 2: 0\n");
    assert_well_typed(s.system());
}

#[test]
fn slots_initialize_from_model_reads() {
    let src = r#"
        global base : number = 40
        page start() {
            init { base := base + 2; }
            render {
                boxed {
                    remember offset : number = base;
                    post offset;
                    on tap { offset := offset + 100; }
                }
            }
        }
    "#;
    let mut s = LiveSession::new(src).expect("starts");
    // Initialized once from the (post-init) model...
    assert_eq!(s.live_view(), "42\n");
    s.tap_path(&[0]).expect("tap");
    // ...then evolves independently of it.
    assert_eq!(s.live_view(), "142\n");
    assert_eq!(s.system().store().get("base"), Some(&Value::Number(42.0)));
}

#[test]
fn render_code_cannot_write_slots() {
    let bad = r#"
        page start() {
            render {
                boxed {
                    remember n : number = 0;
                    n := n + 1;
                    post n;
                }
            }
        }
    "#;
    let err = compile(bad).expect_err("render writes are rejected");
    assert!(err.to_string().contains("widget slot assignment"), "{err}");
}

#[test]
fn remember_is_render_only_and_arrow_free() {
    let in_init = r#"
        page start() {
            init { remember n : number = 0; }
            render { }
        }
    "#;
    assert!(compile(in_init)
        .expect_err("rejected")
        .to_string()
        .contains("requires render mode"));

    let fn_slot = r#"
        page start() {
            render {
                boxed {
                    remember f : fn() state -> () = fn() state { pop; };
                }
            }
        }
    "#;
    assert!(compile(fn_slot)
        .expect_err("rejected")
        .to_string()
        .contains("function-free"));
}

#[test]
fn slots_are_lexically_scoped() {
    let out_of_scope = r#"
        page start() {
            render {
                boxed { remember n : number = 0; post n; }
                post n;
            }
        }
    "#;
    assert!(compile(out_of_scope)
        .expect_err("rejected")
        .to_string()
        .contains("unknown name `n`"));
}

#[test]
fn growing_the_loop_initializes_new_instances_only() {
    let src = r#"
        global count : number = 2
        page start() {
            render {
                boxed { post "rows: " ++ count; on tap { count := count + 1; } }
                for i in 0 .. count {
                    boxed {
                        remember hits : number = 0;
                        post i ++ " -> " ++ hits;
                        on tap { hits := hits + 1; }
                    }
                }
            }
        }
    "#;
    let mut s = LiveSession::new(src).expect("starts");
    s.tap_path(&[1]).expect("hit row 0");
    s.tap_path(&[0]).expect("grow the loop");
    // Row 0 kept its count (same occurrence key); the new row starts at 0.
    assert_eq!(s.live_view(), "rows: 3\n0 -> 1\n1 -> 0\n2 -> 0\n");
}

#[test]
fn memo_cache_and_view_state_compose() {
    // remember-boxes are statically uncacheable; everything else still
    // caches, and views agree with the uncached session.
    let src = r#"
        global items : list number = []
        page start() {
            init { items := list.range(0, 6); }
            render {
                boxed {
                    remember taps : number = 0;
                    post "taps " ++ taps;
                    on tap { taps := taps + 1; }
                }
                foreach x in items {
                    boxed { post "row " ++ x; }
                }
            }
        }
    "#;
    let mut plain = LiveSession::new(src).expect("starts");
    let mut memo = LiveSession::with_memo(src).expect("starts");
    for _ in 0..3 {
        plain.tap_path(&[0]).expect("tap");
        memo.tap_path(&[0]).expect("tap");
        assert_eq!(plain.live_view(), memo.live_view());
    }
    let stats = memo.memo_stats().expect("enabled");
    assert!(stats.hits > 0, "static rows reuse: {stats:?}");
    assert!(
        stats.uncacheable > 0,
        "the remember box never caches: {stats:?}"
    );
}
