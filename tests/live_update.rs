//! The UPDATE transition under adversarial code changes (§4.2, Fig. 12):
//! "Note that there is no requirement that C' is related in any way to
//! C" — arbitrary swaps must fix up state, never crash, and never leave
//! stale code.

use its_alive::core::compile;
use its_alive::core::state_typing::assert_well_typed;
use its_alive::core::system::System;
use its_alive::live::{EditOutcome, LiveSession};

const APP_A: &str = "
    global score : number = 3
    global name : string = \"ada\"
    page start() {
        init { score := score * 2; }
        render {
            boxed { post name ++ \": \" ++ score; on tap { score := score + 1; } }
        }
    }";

/// A completely unrelated program (different globals, extra page).
const APP_B: &str = "
    global inventory : list string = [\"sword\"]
    page start() {
        render {
            foreach item in inventory {
                boxed { post item; on tap { push detail(item); } }
            }
        }
    }
    page detail(which : string) {
        render { boxed { post \"detail of \" ++ which; on tap { pop; } } }
    }";

#[test]
fn swapping_to_an_unrelated_program_works() {
    let mut s = LiveSession::new(APP_A).expect("starts");
    let outcome = s.edit_source(APP_B);
    let EditOutcome::Applied(report) = outcome else {
        panic!("applies")
    };
    // The materialized global is gone (only `score` was ever assigned;
    // `name` lives lazily in its initializer, EP-GLOBAL-2, and never
    // entered the store). The start stack entry survives.
    assert_eq!(report.dropped_globals.len(), 1);
    assert_eq!(&*report.dropped_globals[0].0, "score");
    assert_eq!(report.kept_pages.len(), 1);
    assert_eq!(s.live_view(), "sword\n");
    assert_well_typed(s.system());
}

#[test]
fn swapping_back_and_forth_is_stable() {
    let mut s = LiveSession::new(APP_A).expect("starts");
    for round in 0..4 {
        let target = if round % 2 == 0 { APP_B } else { APP_A };
        assert!(s.edit_source(target).is_applied());
        assert_well_typed(s.system());
        assert!(s.system().is_stable());
    }
    assert_eq!(s.update_counts(), (4, 0));
    // APP_A's init does NOT re-run on update: `score` was dropped by the
    // B→A fix-up and re-reads its initializer (3), not 6.
    assert!(s.live_view().contains("ada: 3"));
}

#[test]
fn update_while_on_a_page_the_new_code_lacks() {
    let mut s = LiveSession::new(APP_B).expect("starts");
    s.tap_path(&[0]).expect("open detail");
    assert_eq!(s.system().current_page().map(|(n, _)| n), Some("detail"));
    // The new code has no `detail` page: P-SKIP drops the stack entry
    // and the user lands back on start.
    let outcome = s.edit_source(APP_A);
    let EditOutcome::Applied(report) = outcome else {
        panic!("applies")
    };
    assert!(report
        .dropped_pages
        .iter()
        .any(|(name, _)| &**name == "detail"));
    assert_eq!(s.system().current_page().map(|(n, _)| n), Some("start"));
    assert_well_typed(s.system());
}

#[test]
fn retyping_a_global_drops_only_that_global() {
    let mut s = LiveSession::new(APP_A).expect("starts");
    s.tap_path(&[0]).expect("tap"); // score = 7
    let retyped = APP_A
        .replace(
            "global score : number = 3",
            "global score : string = \"lots\"",
        )
        .replace("score := score * 2;", "")
        .replace("score := score + 1;", "");
    let outcome = s.edit_source(&retyped);
    let EditOutcome::Applied(report) = outcome else {
        panic!("applies: {outcome:?}")
    };
    assert_eq!(report.dropped_globals.len(), 1, "{report:?}");
    // `name` was never assigned, so it is not in the store; it still
    // reads its initializer after the update (EP-GLOBAL-2).
    assert_eq!(report.kept_globals.len(), 0);
    assert_eq!(s.system().store().get("name"), None);
    assert!(s.live_view().contains("ada: lots"));
}

#[test]
fn every_transition_preserves_well_typedness() {
    // Step-by-step preservation over a whole session with navigation,
    // taps, and an update (the paper's preservation theorem, §4.3).
    let mut sys = System::new(compile(APP_B).expect("compiles"));
    loop {
        assert_well_typed(&sys);
        if sys.step().expect("steps") == its_alive::core::system::StepKind::Stable {
            break;
        }
    }
    sys.tap(&[0]).expect("tap");
    loop {
        assert_well_typed(&sys);
        if sys.step().expect("steps") == its_alive::core::system::StepKind::Stable {
            break;
        }
    }
    sys.update(compile(APP_A).expect("compiles"))
        .expect("updates");
    loop {
        assert_well_typed(&sys);
        if sys.step().expect("steps") == its_alive::core::system::StepKind::Stable {
            break;
        }
    }
    assert_well_typed(&sys);
}

#[test]
fn queue_and_display_are_empty_right_after_update() {
    // §4.2: "after applying rule (UPDATE), the display and the event
    // queue are empty ... the state contains no code."
    let mut sys = System::new(compile(APP_A).expect("compiles"));
    sys.run_to_stable().expect("starts");
    sys.update(compile(APP_B).expect("compiles"))
        .expect("updates");
    assert!(sys.queue().is_empty());
    assert!(!sys.display().is_valid());
    assert_well_typed(&sys); // includes the no-stale-closure scan
}
