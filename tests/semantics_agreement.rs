//! E7 (correctness half) — the faithful small-step substitution machine
//! (Fig. 8) and the production big-step evaluator agree on real
//! programs: same values, same stores, same box trees, same enqueued
//! events. (The performance half is `benches/eval_ablation.rs`.)

use its_alive::core::bigstep;
use its_alive::core::event::EventQueue;
use its_alive::core::smallstep;
use its_alive::core::store::Store;
use its_alive::core::{compile, Program};

const FUEL: u64 = 50_000_000;

fn compiled(src: &str) -> Program {
    compile(src).expect("compiles")
}

/// Both machines run the start page's init then render; everything
/// observable must agree.
fn assert_machines_agree(src: &str) {
    let p = compiled(src);
    let page = p.page("start").expect("start page");

    // Small-step: init in state mode, then render.
    let mut ss_store = Store::new();
    let mut ss_queue = EventQueue::new();
    let ss_init = smallstep::eval_state(&p, &mut ss_store, &mut ss_queue, FUEL, &page.init)
        .expect("small-step init");
    let ss_render =
        smallstep::eval_render(&p, &mut ss_store, FUEL, &page.render).expect("small-step render");

    // Big-step.
    let mut bs_store = Store::new();
    let mut bs_queue = EventQueue::new();
    let (bs_init, _) = bigstep::run_state(
        &p,
        &mut bs_store,
        &mut bs_queue,
        0,
        FUEL,
        vec![],
        &page.init,
    )
    .expect("big-step init");
    let bs_render =
        bigstep::run_render(&p, &bs_store, 0, FUEL, vec![], &page.render).expect("big-step render");

    assert_eq!(ss_init.value, bs_init, "init values agree");
    assert_eq!(ss_store, bs_store, "stores agree");
    assert_eq!(ss_queue, bs_queue, "queues agree");
    assert_eq!(
        ss_render.root.expect("render produces content"),
        bs_render.root,
        "box trees agree"
    );
}

#[test]
fn machines_agree_on_arithmetic_and_control_flow() {
    assert_machines_agree(
        "global total : number = 0
         fun tri(n: number): number pure {
             if n <= 0 { 0 } else { n + tri(n - 1) }
         }
         page start() {
             init {
                 total := tri(20);
                 for i in 0 .. 5 { total := total + i * i; }
             }
             render { boxed { post total; } }
         }",
    );
}

#[test]
fn machines_agree_on_list_workloads() {
    assert_machines_agree(
        "global xs : list number = list.range(0, 10)
         global sum : number = 0
         page start() {
             init {
                 foreach x in xs { sum := sum + x; }
                 xs := list.reverse(list.append(xs, 99));
             }
             render {
                 foreach x in xs {
                     boxed { post x; }
                 }
                 boxed { post \"sum \" ++ sum; }
             }
         }",
    );
}

#[test]
fn machines_agree_on_higher_order_render_helpers() {
    assert_machines_agree(
        "global greeting : string = \"hi\"
         fun row(label: string, value: number): () render {
             boxed {
                 box.horizontal := true;
                 boxed { post label; }
                 boxed { post value; }
             }
         }
         page start() {
             init { greeting := greeting ++ \"!\"; }
             render {
                 boxed {
                     post greeting;
                     box.margin := 2;
                 }
                 row(\"a\", 1);
                 row(\"b\", 2);
                 let scale = fn(n: number) -> n * 10;
                 row(\"c\", scale(3));
             }
         }",
    );
}

#[test]
fn machines_agree_on_navigation_events() {
    assert_machines_agree(
        "global route : number = 2
         page start() {
             init {
                 if route == 2 { push other(route); } else { pop; }
             }
             render { boxed { post \"start\"; } }
         }
         page other(n: number) {
             init { }
             render { boxed { post n; } }
         }",
    );
}

#[test]
fn machines_agree_on_the_mortgage_math() {
    // The paper's payment + amortization math, without local-assign
    // (accumulators live in globals to stay inside the kernel).
    assert_machines_agree(
        "global term : number = 30
         global apr : number = 5
         global balance : number = 185000
         global year : number = 0
         fun monthly_payment(principal: number): number pure {
             let r = apr / 1200;
             let n = term * 12;
             principal * r / (1 - math.pow(1 + r, -n))
         }
         page start() {
             init { }
             render {
                 boxed { post \"payment \" ++ fmt.fixed(monthly_payment(balance), 2); }
             }
         }",
    );
}

#[test]
fn small_step_counts_modes_faithfully() {
    let p = compiled(
        "global g : number = 0
         page start() {
             init { g := 1; g := 2; push start(); }
             render { boxed { post g; box.margin := 1; } }
         }",
    );
    let page = p.page("start").expect("page");
    let mut store = Store::new();
    let mut queue = EventQueue::new();
    let init = smallstep::eval_state(&p, &mut store, &mut queue, FUEL, &page.init).expect("runs");
    // Exactly: 2 assigns + 1 push are state steps; the rest are pure.
    assert_eq!(init.steps.state, 3);
    assert_eq!(init.steps.render, 0);
    let render = smallstep::eval_render(&p, &mut store, FUEL, &page.render).expect("runs");
    // boxed + post + attr are render steps.
    assert_eq!(render.steps.render, 3);
    assert_eq!(render.steps.state, 0);
}
