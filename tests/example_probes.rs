//! Babylonian example probes are a *measured* property of the session:
//! this suite pins the probe lines byte-for-byte across the two
//! evaluation engines and across the memo hit/recompute paths.
//!
//! The probes feed the repl's `:examples` and the alive-watch side
//! panel, so "byte-identical" here is exactly "the user sees the same
//! continuous feedback no matter which engine or cache path served it".

use its_alive::core::system::{EvalEngine, SystemConfig};
use its_alive::live::LiveSession;

fn session_with(source: &str, engine: EvalEngine) -> LiveSession {
    LiveSession::with_options(
        source,
        SystemConfig {
            engine,
            ..SystemConfig::default()
        },
        false,
    )
    .expect("session starts")
}

fn probe_lines(session: &mut LiveSession) -> Vec<String> {
    session
        .examples()
        .iter()
        .map(its_alive::live::ExampleProbe::render_line)
        .collect()
}

/// Every corpus program declares examples; the VM-backed and
/// bigstep-backed sessions must render identical probe lines on the
/// first frame and after every step of an identical interaction walk.
#[test]
fn probes_are_byte_identical_across_vm_and_bigstep_sessions() {
    for entry in alive_corpus::corpus() {
        let name = entry.spec.name();
        let mut vm = session_with(&entry.source, EvalEngine::Vm);
        let mut bs = session_with(&entry.source, EvalEngine::Bigstep);
        let first = probe_lines(&mut vm);
        assert!(
            !first.is_empty(),
            "{name}: corpus programs declare examples"
        );
        assert_eq!(first, probe_lines(&mut bs), "{name}: first-frame probes");
        for step in 0..entry.spec.size.rows() + 2 {
            // Misses are legal and identical across engines.
            let _ = vm.tap_path(&[step]);
            let _ = bs.tap_path(&[step]);
            assert_eq!(
                probe_lines(&mut vm),
                probe_lines(&mut bs),
                "{name}: probes after tap {step}"
            );
        }
    }
}

const APP: &str = r#"
global count : number = 0
page start() {
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 1; }
        }
    }
}
example live_count = count
example doubled = count * 2 expect count + count
"#;

/// The probe cache serves repeat reads without recomputing, and both
/// the cached read and a forced recompute (after a version-bumping
/// edit) render the same bytes.
#[test]
fn memo_hits_and_recomputes_render_identical_probe_lines() {
    let mut session = LiveSession::new(APP).expect("starts");
    let first = probe_lines(&mut session);
    assert_eq!(first, vec!["live_count = 0", "doubled = 0 ok"]);
    let fresh = session.example_stats();
    assert!(fresh.computes >= 1, "first read computes");
    assert_eq!(fresh.hits, 0);

    // Second read: pure cache hit, identical bytes.
    let again = probe_lines(&mut session);
    let cached = session.example_stats();
    assert_eq!(cached.computes, fresh.computes, "no recompute on a hit");
    assert_eq!(cached.hits, fresh.hits + 1);
    assert_eq!(first, again);

    // A benign edit bumps the program version: the cache key misses,
    // the probes recompute — to the same bytes, since the model is
    // untouched.
    let touched = format!("{APP}// touched\n");
    assert!(session.edit_source(&touched).is_applied());
    let after_edit = probe_lines(&mut session);
    let recomputed = session.example_stats();
    assert!(
        recomputed.computes > cached.computes,
        "edit forces a recompute"
    );
    assert_eq!(first, after_edit);

    // A model change recomputes to the new values — continuously live,
    // not stale-cached.
    session.tap_path(&[0]).expect("tap");
    assert_eq!(
        probe_lines(&mut session),
        vec!["live_count = 1", "doubled = 2 ok"]
    );
}
