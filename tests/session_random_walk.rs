//! Random-walk fuzzing of whole sessions: arbitrary interleavings of
//! taps, box edits, back presses, code edits, undo, snapshot/restore —
//! the system must never panic, always settle to a stable, well-typed
//! state, and keep its display consistent with a from-scratch render.

use alive_testkit::{prop, prop_assert, prop_assert_eq, Rng, Shrink};
use its_alive::core::state_typing::assert_well_typed;
use its_alive::core::system::ActionError;
use its_alive::live::{LiveSession, SessionError};

#[derive(Debug, Clone, PartialEq)]
enum Action {
    Tap(usize, usize),
    EditBox(usize, String),
    Back,
    SourceTweak(u8),
    Undo,
    SnapshotRoundtrip,
}

impl Shrink for Action {
    fn shrink(&self) -> Vec<Action> {
        match self {
            Action::Tap(a, b) => (*a, *b)
                .shrink()
                .into_iter()
                .map(|(a, b)| Action::Tap(a, b))
                .collect(),
            Action::EditBox(p, t) => (*p, t.clone())
                .shrink()
                .into_iter()
                .map(|(p, t)| Action::EditBox(p, t))
                .collect(),
            Action::SourceTweak(w) => w.shrink().into_iter().map(Action::SourceTweak).collect(),
            Action::Back | Action::Undo | Action::SnapshotRoundtrip => Vec::new(),
        }
    }
}

fn arb_action(rng: &mut Rng) -> Action {
    match rng.below(6) {
        0 => Action::Tap(rng.below(8), rng.below(4)),
        1 => Action::EditBox(rng.below(8), rng.string_in("0123456789", 0, 3)),
        2 => Action::Back,
        3 => Action::SourceTweak(rng.below(4) as u8),
        4 => Action::Undo,
        _ => Action::SnapshotRoundtrip,
    }
}

const APP: &str = r#"
global score : number = 0
global label : string = "points"
page start() {
    init { }
    render {
        boxed {
            post label ++ ": " ++ score;
            on edited(t: string) { label := t; }
        }
        for i in 0 .. 3 {
            boxed {
                post "+" ++ (i + 1);
                on tap { score := score + i + 1; }
            }
        }
        boxed {
            post "open detail";
            on tap { push detail(score); }
        }
        boxed {
            remember local_hits : number = 0;
            post "widget " ++ local_hits;
            on tap { local_hits := local_hits + 1; }
        }
    }
}
page detail(n : number) {
    render {
        boxed { post "snapshot of " ++ n; on tap { pop; } }
    }
}
"#;

fn tweaked(src: &str, which: u8) -> String {
    match which {
        0 => src.replace("\": \"", "\" = \""),
        1 => src.replace("open detail", "details..."),
        2 => src.replace("score + i + 1", "score + (i + 1) * 2"),
        _ => src.replace("snapshot of ", "detail for "),
    }
}

/// Drive one action against the session, mapping "the target does not
/// exist" action errors to clean no-ops (misses are a legal thing for
/// a user to do) and everything else to a hard failure.
fn drive(session: &mut LiveSession, action: &Action) -> Result<(), String> {
    let result: Result<(), SessionError> = match action {
        Action::Tap(a, b) => {
            // Try a one- or two-level path; misses are fine.
            match session.tap_path(&[*a]) {
                Ok(()) => Ok(()),
                Err(SessionError::Action(_)) => match session.tap_path(&[*a, *b]) {
                    Ok(()) => Ok(()),
                    Err(SessionError::Action(_)) => Ok(()),
                    Err(e) => Err(e),
                },
                Err(e) => Err(e),
            }
        }
        Action::EditBox(p, t) => match session.edit_box(&[*p], t) {
            Ok(()) | Err(SessionError::Action(_)) => Ok(()),
            Err(e) => Err(e),
        },
        Action::Back => match session.back() {
            // Back at the root page is a typed no-op, not a restart.
            Ok(()) | Err(SessionError::Action(_)) => Ok(()),
            Err(e) => Err(e),
        },
        Action::SourceTweak(w) => {
            let new_src = tweaked(session.source(), *w);
            // Total: applied, rejected, or quarantined — all fine.
            let _ = session.edit_source(&new_src);
            Ok(())
        }
        Action::Undo => {
            let _ = session.undo();
            Ok(())
        }
        Action::SnapshotRoundtrip => {
            let snap = session.system().snapshot().expect("store is function-free");
            let report = session
                .system_mut()
                .restore(&snap)
                .expect("own snapshots parse");
            if !report.skipped.is_empty() {
                return Err(format!(
                    "own snapshot must restore fully, skipped {:?}",
                    report.skipped
                ));
            }
            session.refresh();
            Ok(())
        }
    };
    match result {
        Ok(()) => Ok(()),
        Err(SessionError::Action(ActionError::DisplayInvalid)) => {
            // Acceptable transiently; settle and continue.
            session.refresh();
            Ok(())
        }
        Err(other) => Err(format!("action {action:?} failed hard: {other}")),
    }
}

/// The incremental display must equal a fresh render of the same code +
/// model. Handler closures differ by construction context; compare the
/// observable structure instead: leaves + box counts per path.
fn assert_display_consistent(session: &mut LiveSession) -> Result<(), String> {
    let shown = session.display_tree().expect("renders");
    let mut fresh = its_alive::core::system::System::new(
        its_alive::core::compile(session.source()).expect("compiles"),
    );
    *fresh.debug_store_mut() = session.system().store().clone();
    *fresh.debug_widgets_mut() = session.system().widgets().clone();
    fresh.debug_set_pages(session.system().page_stack().to_vec());
    fresh.run_to_stable().expect("fresh render");
    let mut shown_leaves = Vec::new();
    shown.walk(&mut |path, node| {
        shown_leaves.push((
            path.to_vec(),
            node.leaves().map(|v| v.display_text()).collect::<Vec<_>>(),
        ));
    });
    let fresh_display = fresh.display().content().expect("valid").clone();
    let mut fresh_leaves = Vec::new();
    fresh_display.walk(&mut |path, node| {
        fresh_leaves.push((
            path.to_vec(),
            node.leaves().map(|v| v.display_text()).collect::<Vec<_>>(),
        ));
    });
    prop_assert_eq!(shown_leaves, fresh_leaves);
    Ok(())
}

#[test]
fn random_sessions_stay_alive_and_well_typed() {
    prop::check(
        "random_sessions_stay_alive_and_well_typed",
        prop::Config::with_cases(48),
        |rng| {
            let n = rng.gen_range(1..25);
            (0..n).map(|_| arb_action(rng)).collect::<Vec<Action>>()
        },
        |actions: &Vec<Action>| {
            let mut session = LiveSession::new(APP).expect("starts");
            for action in actions {
                drive(&mut session, action)?;
                prop_assert!(session.system().is_stable());
                assert_well_typed(session.system());
            }
            assert_display_consistent(&mut session)
        },
    );
}

// ---------------------------------------------------------------------
// Immortalized regressions and out-of-range action audits
// ---------------------------------------------------------------------

/// The formerly checked-in proptest regression
/// `cc 5da8… # shrinks to actions = [Tap(5, 0)]`: a tap on the last
/// rendered top-level box (the `remember` widget), and on every index
/// around and past the end of the tree, must be a clean no-op or a
/// typed `ActionError` — never a panic, and the display must stay
/// consistent with a from-scratch render.
#[test]
fn tap_out_of_range_is_safe() {
    for first in 4..=8usize {
        let mut session = LiveSession::new(APP).expect("starts");
        drive(&mut session, &Action::Tap(first, 0))
            .unwrap_or_else(|e| panic!("Tap({first}, 0): {e}"));
        assert!(session.system().is_stable(), "stable after Tap({first}, 0)");
        assert_well_typed(session.system());
        assert_display_consistent(&mut session).unwrap_or_else(|e| panic!("Tap({first}, 0): {e}"));
    }
}

/// `back` at the root page must be a typed error (no blind pop, no
/// hidden restart that would re-run init effects).
#[test]
fn back_at_root_is_a_typed_no_op() {
    let mut session = LiveSession::new(APP).expect("starts");
    let before = session.live_view();
    match session.back() {
        Err(SessionError::Action(ActionError::NoPageToPop)) => {}
        other => panic!("expected NoPageToPop at root, got {other:?}"),
    }
    assert!(session.system().is_stable());
    assert_well_typed(session.system());
    assert_eq!(session.live_view(), before);

    // From a pushed page, back still works, and the second back is
    // again the typed no-op.
    session.tap_path(&[4]).expect("open detail");
    assert_eq!(
        session.system().current_page().map(|(n, _)| n),
        Some("detail")
    );
    session.back().expect("pops detail");
    assert_eq!(
        session.system().current_page().map(|(n, _)| n),
        Some("start")
    );
    assert!(matches!(
        session.back(),
        Err(SessionError::Action(ActionError::NoPageToPop))
    ));
}

/// `edit_box` on a missing box or on a box without an `onedit` handler
/// must be a typed `ActionError`, never a panic or a state change.
#[test]
fn edit_box_out_of_range_is_a_typed_error() {
    let mut session = LiveSession::new(APP).expect("starts");
    let before = session.live_view();
    // Box 9 does not exist.
    match session.edit_box(&[9], "42") {
        Err(SessionError::Action(ActionError::NoSuchBox(path))) => {
            assert_eq!(path, vec![9]);
        }
        other => panic!("expected NoSuchBox, got {other:?}"),
    }
    // Box 1 exists but has no edit handler (it is tappable only).
    match session.edit_box(&[1], "42") {
        Err(SessionError::Action(ActionError::NoHandler(_))) => {}
        other => panic!("expected NoHandler, got {other:?}"),
    }
    assert!(session.system().is_stable());
    assert_well_typed(session.system());
    assert_eq!(session.live_view(), before);
}

/// The harness contract the whole suite leans on: the same seed must
/// produce identical action sequences, and a failing property must
/// shrink to the identical minimal counterexample, across two runs.
#[test]
fn testkit_is_deterministic_for_action_walks() {
    use std::cell::RefCell;

    let cfg = prop::Config::with_cases(16).seeded(0x5da8_2013);
    let gen = |rng: &mut Rng| {
        let n = rng.gen_range(1..25);
        (0..n).map(|_| arb_action(rng)).collect::<Vec<Action>>()
    };

    // Same seed ⇒ identical generated sequences.
    let first: RefCell<Vec<Vec<Action>>> = RefCell::new(Vec::new());
    let second: RefCell<Vec<Vec<Action>>> = RefCell::new(Vec::new());
    assert!(prop::check_captured(&cfg, gen, |actions: &Vec<Action>| {
        first.borrow_mut().push(actions.clone());
        Ok(())
    })
    .is_none());
    assert!(prop::check_captured(&cfg, gen, |actions: &Vec<Action>| {
        second.borrow_mut().push(actions.clone());
        Ok(())
    })
    .is_none());
    assert_eq!(first.borrow().len(), 16);
    assert_eq!(
        *first.borrow(),
        *second.borrow(),
        "same seed, same sequences"
    );

    // Same seed ⇒ identical failure and identical shrink. The property
    // "no walk ever taps" fails fast and shrinks to a single tap.
    let no_taps = |actions: &Vec<Action>| {
        prop_assert!(
            !actions.iter().any(|a| matches!(a, Action::Tap(..))),
            "walk contains a tap"
        );
        Ok(())
    };
    let a = prop::check_captured(&cfg, gen, no_taps).expect("must fail");
    let b = prop::check_captured(&cfg, gen, no_taps).expect("must fail");
    assert_eq!(a.case, b.case);
    assert_eq!(a.original, b.original);
    assert_eq!(a.minimal, b.minimal, "same seed, same shrink");
    assert_eq!(a.shrink_steps, b.shrink_steps);
    assert_eq!(a.message, b.message);
    assert_eq!(a.minimal, vec![Action::Tap(0, 0)], "fully shrunk");
}

/// `undo` past the start of history must report "nothing undone"
/// (`Ok(false)`) and leave the session untouched — never index blindly
/// into the undo stack.
#[test]
fn undo_past_start_of_history_is_safe() {
    let mut session = LiveSession::new(APP).expect("starts");
    let before = session.live_view();
    for _ in 0..3 {
        assert!(!session.undo().is_applied(), "nothing to undo");
        assert!(session.system().is_stable());
        assert_well_typed(session.system());
    }
    assert_eq!(session.live_view(), before);

    // One applied edit ⇒ exactly one undo, then safe no-ops again.
    let edited = session.source().replace("points", "pts");
    assert!(session.edit_source(&edited).is_applied());
    assert!(session.undo().is_applied(), "one real undo");
    assert!(!session.undo().is_applied(), "history exhausted");
    assert_eq!(session.source(), APP);
}
