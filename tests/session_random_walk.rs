//! Random-walk fuzzing of whole sessions: arbitrary interleavings of
//! taps, box edits, back presses, code edits, undo, snapshot/restore —
//! the system must never panic, always settle to a stable, well-typed
//! state, and keep its display consistent with a from-scratch render.

use its_alive::core::state_typing::assert_well_typed;
use its_alive::core::system::ActionError;
use its_alive::live::{LiveSession, SessionError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Tap(usize, usize),
    EditBox(usize, String),
    Back,
    SourceTweak(u8),
    Undo,
    SnapshotRoundtrip,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..8, 0usize..4).prop_map(|(a, b)| Action::Tap(a, b)),
        (0usize..8, "[0-9]{0,3}").prop_map(|(p, t)| Action::EditBox(p, t)),
        Just(Action::Back),
        (0u8..4).prop_map(Action::SourceTweak),
        Just(Action::Undo),
        Just(Action::SnapshotRoundtrip),
    ]
}

const APP: &str = r#"
global score : number = 0
global label : string = "points"
page start() {
    init { }
    render {
        boxed {
            post label ++ ": " ++ score;
            on edited(t: string) { label := t; }
        }
        for i in 0 .. 3 {
            boxed {
                post "+" ++ (i + 1);
                on tap { score := score + i + 1; }
            }
        }
        boxed {
            post "open detail";
            on tap { push detail(score); }
        }
        boxed {
            remember local_hits : number = 0;
            post "widget " ++ local_hits;
            on tap { local_hits := local_hits + 1; }
        }
    }
}
page detail(n : number) {
    render {
        boxed { post "snapshot of " ++ n; on tap { pop; } }
    }
}
"#;

fn tweaked(src: &str, which: u8) -> String {
    match which {
        0 => src.replace("\": \"", "\" = \""),
        1 => src.replace("open detail", "details..."),
        2 => src.replace("score + i + 1", "score + (i + 1) * 2"),
        _ => src.replace("snapshot of ", "detail for "),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_sessions_stay_alive_and_well_typed(
        actions in proptest::collection::vec(arb_action(), 1..25)
    ) {
        let mut session = LiveSession::new(APP).expect("starts");
        for action in actions {
            let result: Result<(), SessionError> = match &action {
                Action::Tap(a, b) => {
                    // Try a one- or two-level path; misses are fine.
                    match session.tap_path(&[*a]) {
                        Ok(()) => Ok(()),
                        Err(SessionError::Action(_)) => {
                            match session.tap_path(&[*a, *b]) {
                                Ok(()) => Ok(()),
                                Err(SessionError::Action(_)) => Ok(()),
                                Err(e) => Err(e),
                            }
                        }
                        Err(e) => Err(e),
                    }
                }
                Action::EditBox(p, t) => match session.edit_box(&[*p], t) {
                    Ok(()) | Err(SessionError::Action(_)) => Ok(()),
                    Err(e) => Err(e),
                },
                Action::Back => session.back(),
                Action::SourceTweak(w) => {
                    let new_src = tweaked(session.source(), *w);
                    session
                        .edit_source(&new_src)
                        .map(|_| ())
                        .map_err(SessionError::Runtime)
                }
                Action::Undo => session.undo().map(|_| ()).map_err(SessionError::Runtime),
                Action::SnapshotRoundtrip => {
                    let snap = session.system().snapshot();
                    let report = session
                        .system_mut()
                        .restore(&snap)
                        .expect("own snapshots parse");
                    prop_assert!(report.skipped.is_empty(), "own snapshot restores fully");
                    session.refresh().map_err(SessionError::Runtime)
                }
            };
            match result {
                Ok(()) => {}
                Err(SessionError::Action(ActionError::DisplayInvalid)) => {
                    // Acceptable transiently; settle and continue.
                    session.refresh().map_err(|e| {
                        TestCaseError::fail(format!("refresh failed: {e}"))
                    })?;
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "action {action:?} failed hard: {other}"
                    )));
                }
            }
            prop_assert!(session.system().is_stable());
            assert_well_typed(session.system());
        }

        // Final consistency: the incremental display equals a fresh
        // render of the same code + model.
        let shown = session.display_tree().expect("renders");
        let mut fresh = its_alive::core::system::System::new(
            its_alive::core::compile(session.source()).expect("compiles"),
        );
        *fresh.debug_store_mut() = session.system().store().clone();
        *fresh.debug_widgets_mut() = session.system().widgets().clone();
        fresh.debug_set_pages(session.system().page_stack().to_vec());
        fresh.run_to_stable().expect("fresh render");
        // Handler closures differ by construction context; compare the
        // observable structure instead: leaves + box counts per path.
        let mut shown_leaves = Vec::new();
        shown.walk(&mut |path, node| {
            shown_leaves.push((
                path.to_vec(),
                node.leaves().map(|v| v.display_text()).collect::<Vec<_>>(),
            ));
        });
        let fresh_display = fresh.display().content().expect("valid").clone();
        let mut fresh_leaves = Vec::new();
        fresh_display.walk(&mut |path, node| {
            fresh_leaves.push((
                path.to_vec(),
                node.leaves().map(|v| v.display_text()).collect::<Vec<_>>(),
            ));
        });
        prop_assert_eq!(shown_leaves, fresh_leaves);
    }
}
