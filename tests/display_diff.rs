//! Display diffing on live sessions: model changes damage exactly the
//! boxes whose inputs changed — the observable counterpart of the §5
//! reuse optimization (E4).

use its_alive::apps::gallery;
use its_alive::live::LiveSession;
use its_alive::ui::{damage_ratio, damage_rects, diff_displays, layout, BoxChange};

#[test]
fn one_item_update_damages_one_row_plus_header() {
    let mut s = LiveSession::new(&gallery::feed_src(6)).expect("starts");
    let before = s.display_tree().expect("renders");
    s.tap_path(&[1]).expect("tap row 0");
    let after = s.display_tree().expect("renders");
    let changes = diff_displays(&before, &after);
    let changed_paths: Vec<&[usize]> = changes.iter().map(BoxChange::path).collect();
    assert_eq!(
        changed_paths,
        vec![&[0][..], &[1][..]],
        "header + row 0 only"
    );

    let damage = damage_rects(&layout(&before), &layout(&after), &changes);
    let ratio = damage_ratio(&layout(&after), &damage);
    assert!(ratio < 0.5, "most of the screen is untouched: {ratio}");
}

#[test]
fn selection_change_damages_two_tiles_and_header() {
    let mut s = LiveSession::new(&gallery::gallery_src(8)).expect("starts");
    s.tap_path(&[3]).expect("select tile 2");
    let before = s.display_tree().expect("renders");
    s.tap_path(&[6]).expect("select tile 5");
    let after = s.display_tree().expect("renders");
    let changes = diff_displays(&before, &after);
    let changed_paths: Vec<&[usize]> = changes.iter().map(BoxChange::path).collect();
    // Header (reads `selected`), the de-selected tile, the selected tile.
    assert_eq!(changed_paths, vec![&[0][..], &[3][..], &[6][..]]);
}

#[test]
fn growing_the_model_adds_boxes() {
    let mut s = LiveSession::new(its_alive::apps::SHOPPING_SRC).expect("starts");
    let before = s.display_tree().expect("renders");
    s.tap_path(&[4]).expect("add apples");
    let after = s.display_tree().expect("renders");
    let changes = diff_displays(&before, &after);
    assert!(
        changes.iter().any(|c| matches!(c, BoxChange::Added(_))),
        "a new row appeared: {changes:?}"
    );
}

#[test]
fn a_pure_relabel_edit_damages_only_the_label() {
    let src = "
        global a : number = 1
        page start() {
            render {
                boxed { post \"alpha \" ++ a; }
                boxed { post \"beta\"; }
                boxed { post \"gamma\"; }
            }
        }";
    let mut s = LiveSession::new(src).expect("starts");
    let before = s.display_tree().expect("renders");
    let edited = src.replace("\"beta\"", "\"BETA\"");
    assert!(s.edit_source(&edited).is_applied());
    let after = s.display_tree().expect("renders");
    let changes = diff_displays(&before, &after);
    let changed_paths: Vec<&[usize]> = changes.iter().map(BoxChange::path).collect();
    assert_eq!(changed_paths, vec![&[1][..]]);
}
