//! E2 — the three live improvements of §2/§3.1, applied while the
//! program runs: I1 (margins), I2 (dollars-and-cents), I3 (row
//! highlighting). Each edit must apply without restarting, preserve the
//! model, and change exactly the intended part of the display.

use its_alive::apps::mortgage;
use its_alive::core::{Attr, Color, Value};
use its_alive::live::LiveSession;

/// Drive to the detail page of the first listing, like the paper's
/// session.
fn on_detail_page() -> LiveSession {
    let mut s = LiveSession::new(&mortgage::mortgage_src(4)).expect("compiles");
    s.tap_path(&[1, 0]).expect("open detail");
    s
}

#[test]
fn i1_margin_tweak_applies_live_on_the_start_page() {
    let mut s = LiveSession::new(&mortgage::mortgage_src(4)).expect("compiles");
    let before = s.live_view();
    let improved = mortgage::apply_improvement_i1(s.source());
    assert!(s.edit_source(&improved).is_applied());
    let after = s.live_view();
    assert_ne!(before, after, "margins moved");
    // Same content, just laid out differently.
    assert_eq!(
        before.split_whitespace().collect::<Vec<_>>(),
        after.split_whitespace().collect::<Vec<_>>()
    );
    // No re-download happened (the edit did not restart the program).
    assert_eq!(s.system().cost().prim.web_requests, 1);
}

#[test]
fn i2_formats_every_balance_row_without_leaving_the_page() {
    let mut s = on_detail_page();
    let before = s.live_view();
    assert!(
        !before_balances_all_formatted(&before),
        "base version prints raw balances"
    );

    let improved = mortgage::apply_improvement_i2(s.source());
    assert!(s.edit_source(&improved).is_applied());

    // Still on the detail page: the UI context survived the edit.
    assert_eq!(s.system().current_page().map(|(n, _)| n), Some("detail"));
    let after = s.live_view();
    assert!(
        before_balances_all_formatted(&after),
        "every balance row now shows dollars.cents: {after}"
    );
    assert_eq!(after.matches("balance:").count(), 30, "all 30 rows updated");
}

fn before_balances_all_formatted(view: &str) -> bool {
    view.lines().filter(|l| l.contains("balance: $")).all(|l| {
        let amount = l
            .split("balance: $")
            .nth(1)
            .unwrap_or("")
            .trim_end_matches(" |")
            .trim();
        match amount.split_once('.') {
            Some((_, cents)) => cents.len() == 2 && cents.chars().all(|c| c.is_ascii_digit()),
            None => false,
        }
    })
}

#[test]
fn i3_highlights_every_fifth_row() {
    let mut s = on_detail_page();
    let improved = mortgage::apply_improvement_i3(s.source());
    assert!(s.edit_source(&improved).is_applied());

    let display = s.display_tree().expect("renders");
    // The amortization rows live under the schedule box (index 4).
    let schedule = display.descendant(&[4]).expect("schedule box");
    let rows: Vec<_> = schedule.children().collect();
    assert_eq!(rows.len(), 30);
    for (i, row) in rows.iter().enumerate() {
        let highlighted = row.attr(Attr::Background)
            == Some(&Value::Color(Color::by_name("light_blue").expect("known")));
        assert_eq!(
            highlighted,
            i % 5 == 4,
            "row {i} highlight state (paper: every fifth year)"
        );
    }
}

#[test]
fn all_three_improvements_stack_in_one_session() {
    let mut s = on_detail_page();
    for improve in [
        mortgage::apply_improvement_i2 as fn(&str) -> String,
        mortgage::apply_improvement_i3,
        mortgage::apply_improvement_i1,
    ] {
        let improved = improve(s.source());
        assert!(s.edit_source(&improved).is_applied());
    }
    assert_eq!(s.update_counts(), (3, 0));
    // Still on the detail page, one download total, model intact.
    assert_eq!(s.system().current_page().map(|(n, _)| n), Some("detail"));
    assert_eq!(s.system().cost().prim.web_requests, 1);
    let view = s.live_view();
    assert!(view.contains("term: 30 years"), "model intact");
    assert!(view.contains("balance: $"));
}

#[test]
fn half_typed_improvement_is_rejected_and_leaves_the_page_running() {
    let mut s = on_detail_page();
    // The paper's I2 edit, stopped mid-keystroke.
    let broken = s.source().replace(
        "post \"balance: $\" ++ balance;",
        "post \"balance: $\" ++ math.floor(balance) ++ \".\" ++ ;",
    );
    let outcome = s.edit_source(&broken);
    assert!(!outcome.is_applied());
    // The old view is still alive and interactive.
    assert!(s.live_view().contains("balance: $"));
    s.back().expect("still interactive");
    assert_eq!(s.system().current_page().map(|(n, _)| n), Some("start"));
}
