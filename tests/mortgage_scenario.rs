//! E1 — the paper's running example end to end (Figures 1, 3, 4, 5).
//!
//! Start page lists downloaded listings; tapping an entry pushes the
//! detail page with the monthly payment and amortization schedule; term
//! and APR are editable; back returns to the listings.

use its_alive::apps::mortgage;
use its_alive::core::Value;
use its_alive::live::LiveSession;

fn start_session(n: usize) -> LiveSession {
    LiveSession::new(&mortgage::mortgage_src(n)).expect("mortgage calculator compiles")
}

#[test]
fn start_page_shows_downloaded_listings() {
    let mut s = start_session(7);
    let view = s.live_view();
    assert!(view.contains("Local"));
    assert!(view.contains("Listings"));
    // All seven listings are on screen with prices.
    assert_eq!(view.matches('$').count(), 7);
    // The model holds the downloaded list.
    let Some(Value::List(listings)) = s.system().store().get("listings") else {
        panic!("listings global is a list");
    };
    assert_eq!(listings.len(), 7);
    // Exactly one simulated download.
    assert_eq!(s.system().cost().prim.web_requests, 1);
}

#[test]
fn tapping_a_listing_pushes_its_detail_page() {
    let mut s = start_session(4);
    let Some(Value::List(listings)) = s.system().store().get("listings").cloned() else {
        panic!("listings is a list");
    };
    let Value::Tuple(third) = &listings[2] else {
        panic!("tuple")
    };
    let (Value::Str(addr), Value::Number(price)) = (&third[0], &third[1]) else {
        panic!("(string, number)");
    };
    let addr = addr.clone();
    let price = *price;

    s.tap_path(&[1, 2]).expect("tap third listing");
    assert_eq!(s.system().current_page().map(|(n, _)| n), Some("detail"));
    // The page argument is the tapped listing.
    let (_, arg) = s.system().page_stack().last().cloned().expect("on detail");
    assert_eq!(
        arg,
        Value::tuple(vec![Value::Str(addr.clone()), Value::Number(price)])
    );

    let view = s.live_view();
    assert!(view.contains(&*addr), "detail shows the address");
    assert!(view.contains("monthly payment"));
    assert!(view.contains("year 1"));
    assert!(view.contains("year 30"), "30-year schedule by default");
}

#[test]
fn monthly_payment_matches_the_oracle() {
    let mut s = start_session(3);
    s.tap_path(&[1, 0]).expect("open first listing");
    let (_, arg) = s.system().page_stack().last().cloned().expect("on detail");
    let Value::Tuple(parts) = &arg else {
        panic!("tuple")
    };
    let Value::Number(price) = parts[1] else {
        panic!("number")
    };
    let expected = mortgage::expected_monthly_payment(price, 5.0, 30.0);
    let view = s.live_view();
    let shown = view
        .lines()
        .find(|l| l.contains("monthly payment"))
        .expect("shown");
    assert!(
        shown.contains(&format!("${expected:.2}")),
        "expected payment {expected:.2} in {shown:?}"
    );
}

#[test]
fn editing_term_and_apr_recomputes_the_schedule() {
    let mut s = start_session(3);
    s.tap_path(&[1, 0]).expect("open detail");
    // Edit the term box to 15 years.
    s.edit_box(&[2, 0], "15").expect("editable");
    assert_eq!(s.system().store().get("term"), Some(&Value::Number(15.0)));
    let view = s.live_view();
    assert!(view.contains("term: 15 years"));
    assert!(view.contains("year 15"));
    assert!(!view.contains("year 16"), "schedule shortened");

    // Edit the APR box.
    s.edit_box(&[2, 1], "3.5").expect("editable");
    assert_eq!(s.system().store().get("apr"), Some(&Value::Number(3.5)));
    assert!(s.live_view().contains("APR: 3.5%"));

    // Nonsense input is ignored by the handler's guard.
    s.edit_box(&[2, 0], "soon").expect("editable");
    assert_eq!(s.system().store().get("term"), Some(&Value::Number(15.0)));
}

#[test]
fn amortization_reaches_zero_balance() {
    let mut s = start_session(1);
    s.tap_path(&[1, 0]).expect("open detail");
    let improved = mortgage::apply_improvement_i2(s.source());
    s.edit_source(&improved);
    let view = s.live_view();
    let last_row = view
        .lines()
        .rfind(|l| l.contains("balance:"))
        .expect("has rows");
    assert!(
        last_row.contains("$0.00"),
        "final balance is zero: {last_row}"
    );
}

#[test]
fn back_returns_to_the_listings() {
    let mut s = start_session(3);
    s.tap_path(&[1, 1]).expect("open detail");
    s.back().expect("back");
    assert_eq!(s.system().current_page().map(|(n, _)| n), Some("start"));
    // Only the original download — no re-fetch on pop (model retained).
    assert_eq!(s.system().cost().prim.web_requests, 1);
    assert!(s.live_view().contains("Listings"));
}

#[test]
fn tapping_the_schedule_pops_too() {
    let mut s = start_session(2);
    s.tap_path(&[1, 0]).expect("open detail");
    // The amortization box has `on tap { pop; }` (box index 4).
    s.tap_path(&[4]).expect("tap schedule");
    assert_eq!(s.system().current_page().map(|(n, _)| n), Some("start"));
}
