//! Property fuzzing of the semantics: randomly generated well-typed
//! programs evaluate identically under the faithful small-step
//! substitution machine (Fig. 8) and the production big-step evaluator
//! — values, stores, and event queues all agree. This is the
//! machine-checked version of "the evaluator refines the calculus".

use its_alive::core::event::EventQueue;
use its_alive::core::store::Store;
use its_alive::core::{bigstep, compile, smallstep};
use proptest::prelude::*;

/// Generate a well-typed numeric expression as source text, over a
/// fixed context: globals `ga`, `gb` (numbers), function
/// `inc(x: number)`, and whatever `let`-bound names the generator has
/// introduced in scope.
fn num_expr(vars: Vec<String>) -> impl Strategy<Value = String> {
    let leaf = {
        let vars = vars.clone();
        prop_oneof![
            (0u32..100).prop_map(|n| n.to_string()),
            Just("ga".to_string()),
            Just("gb".to_string()),
            proptest::sample::select(
                vars.iter()
                    .cloned()
                    .chain(["ga".to_string()])
                    .collect::<Vec<_>>()
            ),
        ]
    };
    leaf.prop_recursive(4, 32, 3, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), proptest::sample::select(vec!["+", "-", "*"]))
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            inner.clone().prop_map(|a| format!("inc({a})")),
            inner.clone().prop_map(|a| format!("math.abs({a})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("(if ({c}) > 10 {{ {t} }} else {{ {e} }})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("({a}, {b}).2")),
            inner.clone().prop_map(|a| format!("list.nth([{a}], 0)")),
        ]
    })
}

/// A whole program: globals, a helper, and an init body that computes
/// with the generated expressions and assigns results to globals.
fn arb_program() -> impl Strategy<Value = String> {
    (
        num_expr(vec![]),
        num_expr(vec!["x1".to_string()]),
        num_expr(vec!["x1".to_string(), "x2".to_string()]),
        0u32..50,
        0u32..50,
    )
        .prop_map(|(e1, e2, e3, ga, gb)| {
            format!(
                "global ga : number = {ga}
                 global gb : number = {gb}
                 fun inc(x: number): number pure {{ x + 1 }}
                 page start() {{
                     init {{
                         let x1 = {e1};
                         let x2 = {e2};
                         ga := x1 + x2;
                         gb := {e3};
                         if ga > gb {{ push start(); }} else {{ pop; }}
                     }}
                     render {{
                         boxed {{
                             post ga ++ \"/\" ++ gb;
                             box.margin := 1;
                         }}
                         for i in 0 .. 3 {{
                             boxed {{ post i * gb; }}
                         }}
                     }}
                 }}"
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn machines_agree_on_generated_programs(src in arb_program()) {
        let program = compile(&src).expect("generated programs are well-typed");
        let page = program.page("start").expect("page");
        const FUEL: u64 = 5_000_000;

        // init under both machines.
        let mut ss_store = Store::new();
        let mut ss_queue = EventQueue::new();
        let ss = smallstep::eval_state(&program, &mut ss_store, &mut ss_queue, FUEL, &page.init)
            .expect("small-step init");
        let mut bs_store = Store::new();
        let mut bs_queue = EventQueue::new();
        let (bs, _) = bigstep::run_state(
            &program, &mut bs_store, &mut bs_queue, 0, FUEL, vec![], &page.init,
        )
        .expect("big-step init");

        prop_assert_eq!(ss.value, bs, "init values agree");
        prop_assert_eq!(&ss_store, &bs_store, "stores agree");
        prop_assert_eq!(&ss_queue, &bs_queue, "queues agree");

        // render under both machines, from the shared store.
        let ss_render = smallstep::eval_render(&program, &mut ss_store, FUEL, &page.render)
            .expect("small-step render");
        let bs_render = bigstep::run_render(&program, &bs_store, 0, FUEL, vec![], &page.render)
            .expect("big-step render");
        prop_assert_eq!(
            ss_render.root.expect("box content"),
            bs_render.root,
            "box trees agree"
        );
    }
}
