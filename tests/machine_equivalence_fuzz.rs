//! Property fuzzing of the semantics: randomly generated well-typed
//! programs evaluate identically under the faithful small-step
//! substitution machine (Fig. 8) and the production big-step evaluator
//! — values, stores, and event queues all agree. This is the
//! machine-checked version of "the evaluator refines the calculus".

use alive_testkit::{prop, prop_assert_eq, NoShrink, Rng};
use its_alive::core::event::EventQueue;
use its_alive::core::store::Store;
use its_alive::core::{bigstep, compile, smallstep};

/// Generate a well-typed numeric expression as source text, over a
/// fixed context: globals `ga`, `gb` (numbers), function
/// `inc(x: number)`, and whatever `let`-bound names the generator has
/// introduced in scope.
fn num_expr(rng: &mut Rng, vars: &[&str], depth: usize) -> String {
    if depth == 0 || rng.chance(2, 5) {
        match rng.below(4) {
            0 => rng.below(100).to_string(),
            1 => "ga".to_string(),
            2 => "gb".to_string(),
            _ => {
                let mut pool: Vec<&str> = vars.to_vec();
                pool.push("ga");
                rng.choose(&pool).to_string()
            }
        }
    } else {
        match rng.below(6) {
            0 => {
                let op = *rng.choose(&["+", "-", "*"]);
                format!(
                    "({} {op} {})",
                    num_expr(rng, vars, depth - 1),
                    num_expr(rng, vars, depth - 1)
                )
            }
            1 => format!("inc({})", num_expr(rng, vars, depth - 1)),
            2 => format!("math.abs({})", num_expr(rng, vars, depth - 1)),
            3 => format!(
                "(if ({}) > 10 {{ {} }} else {{ {} }})",
                num_expr(rng, vars, depth - 1),
                num_expr(rng, vars, depth - 1),
                num_expr(rng, vars, depth - 1)
            ),
            4 => format!(
                "({}, {}).2",
                num_expr(rng, vars, depth - 1),
                num_expr(rng, vars, depth - 1)
            ),
            _ => format!("list.nth([{}], 0)", num_expr(rng, vars, depth - 1)),
        }
    }
}

/// A whole program: globals, a helper, and an init body that computes
/// with the generated expressions and assigns results to globals.
fn arb_program(rng: &mut Rng) -> String {
    let e1 = num_expr(rng, &[], 4);
    let e2 = num_expr(rng, &["x1"], 4);
    let e3 = num_expr(rng, &["x1", "x2"], 4);
    let ga = rng.below(50);
    let gb = rng.below(50);
    format!(
        "global ga : number = {ga}
         global gb : number = {gb}
         fun inc(x: number): number pure {{ x + 1 }}
         page start() {{
             init {{
                 let x1 = {e1};
                 let x2 = {e2};
                 ga := x1 + x2;
                 gb := {e3};
                 if ga > gb {{ push start(); }} else {{ pop; }}
             }}
             render {{
                 boxed {{
                     post ga ++ \"/\" ++ gb;
                     box.margin := 1;
                 }}
                 for i in 0 .. 3 {{
                     boxed {{ post i * gb; }}
                 }}
             }}
         }}"
    )
}

#[test]
fn machines_agree_on_generated_programs() {
    prop::check(
        "machines_agree_on_generated_programs",
        prop::Config::with_cases(160),
        |rng| NoShrink(arb_program(rng)),
        |src: &NoShrink<String>| {
            let program = compile(&src.0).expect("generated programs are well-typed");
            let page = program.page("start").expect("page");
            const FUEL: u64 = 5_000_000;

            // init under both machines.
            let mut ss_store = Store::new();
            let mut ss_queue = EventQueue::new();
            let ss =
                smallstep::eval_state(&program, &mut ss_store, &mut ss_queue, FUEL, &page.init)
                    .expect("small-step init");
            let mut bs_store = Store::new();
            let mut bs_queue = EventQueue::new();
            let (bs, _) = bigstep::run_state(
                &program,
                &mut bs_store,
                &mut bs_queue,
                0,
                FUEL,
                vec![],
                &page.init,
            )
            .expect("big-step init");

            prop_assert_eq!(ss.value, bs, "init values agree");
            prop_assert_eq!(&ss_store, &bs_store, "stores agree");
            prop_assert_eq!(&ss_queue, &bs_queue, "queues agree");

            // render under both machines, from the shared store.
            let ss_render = smallstep::eval_render(&program, &mut ss_store, FUEL, &page.render)
                .expect("small-step render");
            let bs_render = bigstep::run_render(&program, &bs_store, 0, FUEL, vec![], &page.render)
                .expect("big-step render");
            prop_assert_eq!(
                ss_render.root.expect("box content"),
                bs_render.root,
                "box trees agree"
            );
            Ok(())
        },
    );
}
