//! E10 — property-based tests over the core invariants:
//!
//! * arbitrary source mutations never crash a live session and always
//!   leave a well-typed, stable system (accept-or-reject totality);
//! * the Fig. 12 fix-up keeps exactly the well-typed store entries;
//! * layout geometry: children stay inside parents, siblings do not
//!   overlap, hit-testing agrees with rectangles;
//! * the pretty-printer is idempotent on generated expressions;
//! * batch text edits agree with one-at-a-time application.

use alive_testkit::{prop, prop_assert, prop_assert_eq, NoShrink, Rng};
use its_alive::core::boxtree::{BoxItem, BoxNode};
use its_alive::core::fixup::fixup_store;
use its_alive::core::state_typing::assert_well_typed;
use its_alive::core::store::Store;
use its_alive::core::{compile, Attr, Value};
use its_alive::live::LiveSession;
use its_alive::syntax::{apply_edits, parse_expr, pretty_expr, Span, TextEdit};
use its_alive::ui::{hit_test, layout, LayoutItem, Point};

// ---------------------------------------------------------------------
// Live-edit fuzzing
// ---------------------------------------------------------------------

const SEED_SRC: &str = r#"
global count : number = 0
global label : string = "taps"
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post label ++ ": " ++ count;
            box.margin := 1;
            on tap { count := count + 10; }
        }
        for i in 0 .. 3 {
            boxed { post i; }
        }
    }
}
"#;

/// A random mutation of the seed source: insert, delete, or replace a
/// small region.
fn mutated_source(rng: &mut Rng) -> String {
    const INSERTIONS: &str = r#" {}();:=+-*/"abcdefg0123456789 boxed post global render"#;
    let mut src = SEED_SRC.to_string();
    let pos = rng.below(SEED_SRC.len());
    let len = rng.below(16);
    let ins: String = {
        let chars: Vec<char> = INSERTIONS.chars().collect();
        rng.choose(&chars).to_string()
    };
    let kind = rng.below(3) as u8;
    // Snap to a char boundary.
    let mut at = pos.min(src.len());
    while !src.is_char_boundary(at) {
        at -= 1;
    }
    match kind {
        0 => src.insert_str(at, &ins), // insertion
        1 => {
            // deletion
            let mut end = (at + len).min(src.len());
            while !src.is_char_boundary(end) {
                end -= 1;
            }
            src.replace_range(at..end.max(at), "");
        }
        _ => {
            // replacement
            let mut end = (at + len).min(src.len());
            while !src.is_char_boundary(end) {
                end -= 1;
            }
            src.replace_range(at..end.max(at), &ins);
        }
    }
    src
}

/// Whatever the keystroke does, the session stays alive: the edit is
/// either applied (system now runs the new code) or rejected (old code
/// keeps running), and the state is well-typed either way.
#[test]
fn random_edits_never_kill_the_session() {
    prop::check(
        "random_edits_never_kill_the_session",
        prop::Config::with_cases(96),
        mutated_source,
        |mutated: &String| {
            let mut session = LiveSession::new(SEED_SRC).expect("seed compiles");
            session.tap_path(&[0]).expect("tap");
            let before_view = session.live_view();

            // edit_source is total: applied, rejected, or quarantined
            // (accepted code that faulted at run time — e.g. a mutated
            // loop bound diverging — is auto-reverted).
            let outcome = session.edit_source(mutated);
            assert_well_typed(session.system());
            prop_assert!(session.system().is_stable());
            if !outcome.is_applied() {
                // Rejected or quarantined: the old program must be
                // untouched (quarantine restores it wholesale).
                prop_assert_eq!(session.source(), SEED_SRC);
                prop_assert_eq!(session.live_view(), before_view.clone());
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Fix-up soundness
// ---------------------------------------------------------------------

/// A random data value: numbers, strings, bools, and shallow
/// tuples/lists thereof. Finite numbers only — store equality is the
/// property under test, not NaN semantics.
fn arb_value(rng: &mut Rng, depth: usize) -> Value {
    if depth == 0 || rng.chance(3, 5) {
        match rng.below(3) {
            0 => {
                let magnitude = rng.gen_f64() * 1e9 - 5e8;
                Value::Number(magnitude.trunc())
            }
            1 => Value::str(rng.string_in("abcxyz0189 _.!", 0, 12)),
            _ => Value::Bool(rng.gen_bool()),
        }
    } else {
        let n = rng.below(4);
        let items: Vec<Value> = (0..n).map(|_| arb_value(rng, depth - 1)).collect();
        if rng.gen_bool() {
            Value::tuple(items)
        } else {
            Value::list(items)
        }
    }
}

/// `C' : S ▷ S'` keeps exactly the entries whose value inhabits the
/// declared type; the kept store re-fixes to itself (idempotence).
#[test]
fn fixup_keeps_exactly_the_well_typed() {
    prop::check(
        "fixup_keeps_exactly_the_well_typed",
        prop::Config::with_cases(128),
        |rng| {
            let n = rng.below(6);
            NoShrink(
                (0..n)
                    .map(|_| {
                        let name = *rng.choose(&["count", "label", "ghost"]);
                        (name, arb_value(rng, 3))
                    })
                    .collect::<Vec<(&str, Value)>>(),
            )
        },
        |entries: &NoShrink<Vec<(&str, Value)>>| {
            let program = compile(SEED_SRC).expect("compiles");
            let mut store = Store::new();
            for (name, value) in &entries.0 {
                store.set(*name, value.clone());
            }
            let (fixed, report) = fixup_store(&program, &store);
            for (name, value) in fixed.iter() {
                let decl = program.global(name).expect("kept entries are declared");
                prop_assert!(value.has_type(&decl.ty));
            }
            prop_assert_eq!(fixed.len() + report.dropped_globals.len(), store.len());
            let (refixed, report2) = fixup_store(&program, &fixed);
            prop_assert_eq!(&refixed, &fixed, "fix-up is idempotent");
            prop_assert!(report2.dropped_globals.is_empty());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Layout geometry
// ---------------------------------------------------------------------

fn arb_box_tree(rng: &mut Rng, depth: usize) -> BoxNode {
    let mut node = BoxNode::new(None);
    node.items.push(BoxItem::attr(
        Attr::Margin,
        Value::Number(rng.below(3) as f64),
    ));
    node.items.push(BoxItem::attr(
        Attr::Padding,
        Value::Number(rng.below(3) as f64),
    ));
    if rng.gen_bool() {
        node.items
            .push(BoxItem::attr(Attr::Horizontal, Value::Bool(true)));
    }
    let text = rng.string_in("abcdefghijklmnopqrstuvwxyz", 0, 6);
    if !text.is_empty() {
        node.items.push(BoxItem::leaf(Value::str(text)));
    }
    if depth > 0 {
        for _ in 0..rng.below(4) {
            node.push_child(arb_box_tree(rng, depth - 1));
        }
    }
    node
}

/// Geometry invariants of the layout substrate.
#[test]
fn layout_geometry_is_sane() {
    prop::check(
        "layout_geometry_is_sane",
        prop::Config::with_cases(128),
        |rng| NoShrink(arb_box_tree(rng, 3)),
        |root: &NoShrink<BoxNode>| {
            let tree = layout(&root.0);
            tree.root.walk(&mut |node| {
                // Children (including their margins) stay inside the parent.
                let mut child_rects = Vec::new();
                for item in &node.items {
                    if let LayoutItem::Child(c) = item {
                        let m = c.style.margin;
                        let outer = c.rect;
                        assert!(outer.left() - m >= node.rect.left(), "left overflow");
                        assert!(outer.top() - m >= node.rect.top(), "top overflow");
                        assert!(outer.right() + m <= node.rect.right(), "right overflow");
                        assert!(outer.bottom() + m <= node.rect.bottom(), "bottom overflow");
                        child_rects.push(outer);
                    }
                }
                // Siblings never overlap.
                for (i, a) in child_rects.iter().enumerate() {
                    for b in child_rects.iter().skip(i + 1) {
                        let disjoint = a.right() <= b.left()
                            || b.right() <= a.left()
                            || a.bottom() <= b.top()
                            || b.bottom() <= a.top()
                            || a.size.is_empty()
                            || b.size.is_empty();
                        assert!(disjoint, "siblings overlap: {a} vs {b}");
                    }
                }
            });

            // Hit-testing agrees with rectangles: hitting a box's top-left
            // cell finds that box or one of its descendants.
            tree.root.walk(&mut |node| {
                if node.rect.size.is_empty() {
                    return;
                }
                let p = Point::new(node.rect.left(), node.rect.top());
                let hit = hit_test(&tree, p).expect("inside the root");
                assert!(
                    hit.starts_with(&node.path[..]) || node.path.starts_with(&hit[..]),
                    "hit {hit:?} unrelated to box {:?}",
                    node.path
                );
            });
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Pretty-printer and text edits
// ---------------------------------------------------------------------

/// Well-formed expression source via a tiny grammar.
fn arb_expr_src(rng: &mut Rng, depth: usize) -> String {
    if depth == 0 || rng.chance(2, 5) {
        match rng.below(4) {
            0 => rng.below(1000).to_string(),
            1 => "true".to_string(),
            2 => "false".to_string(),
            _ => format!("\"{}\"", rng.string_in("abcdefghijklmnopqrstuvwxyz", 1, 5)),
        }
    } else {
        let a = arb_expr_src(rng, depth - 1);
        match rng.below(6) {
            0 => format!("({a} + {})", arb_expr_src(rng, depth - 1)),
            1 => format!("({a} ++ {})", arb_expr_src(rng, depth - 1)),
            2 => format!("({a}, {})", arb_expr_src(rng, depth - 1)),
            3 => format!("({a}, {}).1", arb_expr_src(rng, depth - 1)),
            4 => format!("[{a}]"),
            _ => format!("-({a})"),
        }
    }
}

/// pretty ∘ parse is idempotent: printing a parsed expression and
/// re-parsing yields the same print.
#[test]
fn pretty_print_is_idempotent() {
    prop::check(
        "pretty_print_is_idempotent",
        prop::Config::with_cases(256),
        |rng| NoShrink(arb_expr_src(rng, 4)),
        |src: &NoShrink<String>| {
            let first = parse_expr(&src.0).expect("generated source parses");
            let printed = pretty_expr(&first);
            let second = parse_expr(&printed)
                .unwrap_or_else(|e| panic!("pretty output must parse: {printed:?}: {e}"));
            prop_assert_eq!(printed.clone(), pretty_expr(&second));
            Ok(())
        },
    );
}

/// Batch edit application agrees with right-to-left one-at-a-time
/// application.
#[test]
fn batch_edits_agree_with_sequential() {
    prop::check(
        "batch_edits_agree_with_sequential",
        prop::Config::with_cases(256),
        |rng| {
            let text = rng.string_in("abcdefghijklmnopqrstuvwxyz", 10, 40);
            let n = rng.below(5);
            let cuts: Vec<(usize, usize, String)> = (0..n)
                .map(|_| {
                    (
                        rng.below(40),
                        rng.below(5),
                        rng.string_in("ABCDEFGHIJKLMNOPQRSTUVWXYZ", 0, 3),
                    )
                })
                .collect();
            (text, cuts)
        },
        |(text, cuts): &(String, Vec<(usize, usize, String)>)| {
            // Build non-overlapping edits by sorting and deduplicating.
            let mut edits: Vec<TextEdit> = Vec::new();
            let mut taken: Vec<(u32, u32)> = Vec::new();
            for (start, len, replacement) in cuts {
                let start = (*start).min(text.len()) as u32;
                let end = (start + *len as u32).min(text.len() as u32);
                if taken.iter().any(|&(s, e)| {
                    start < e && s < end
                        || (start == s && end == e)
                        || (start == s && (start == end || s == e))
                }) {
                    continue;
                }
                taken.push((start, end));
                edits.push(TextEdit::replace(Span::new(start, end), replacement));
            }
            let batch = apply_edits(text, &edits).expect("non-overlapping");
            // Sequentially, right to left so spans stay valid.
            let mut sequential = text.clone();
            let mut sorted = edits.clone();
            sorted.sort_by_key(|e| std::cmp::Reverse(e.span.start));
            for e in sorted {
                sequential
                    .replace_range(e.span.start as usize..e.span.end as usize, &e.replacement);
            }
            prop_assert_eq!(batch, sequential);
            Ok(())
        },
    );
}
