//! E10 — property-based tests over the core invariants:
//!
//! * arbitrary source mutations never crash a live session and always
//!   leave a well-typed, stable system (accept-or-reject totality);
//! * the Fig. 12 fix-up keeps exactly the well-typed store entries;
//! * layout geometry: children stay inside parents, siblings do not
//!   overlap, hit-testing agrees with rectangles;
//! * the pretty-printer is idempotent on generated expressions;
//! * batch text edits agree with one-at-a-time application.

use its_alive::core::boxtree::{BoxItem, BoxNode};
use its_alive::core::fixup::fixup_store;
use its_alive::core::state_typing::assert_well_typed;
use its_alive::core::store::Store;
use its_alive::core::{compile, Attr, Value};
use its_alive::live::LiveSession;
use its_alive::syntax::{apply_edits, parse_expr, pretty_expr, Span, TextEdit};
use its_alive::ui::{hit_test, layout, LayoutItem, Point};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Live-edit fuzzing
// ---------------------------------------------------------------------

const SEED_SRC: &str = r#"
global count : number = 0
global label : string = "taps"
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post label ++ ": " ++ count;
            box.margin := 1;
            on tap { count := count + 10; }
        }
        for i in 0 .. 3 {
            boxed { post i; }
        }
    }
}
"#;

/// A random mutation of the seed source.
fn mutated_source() -> impl Strategy<Value = String> {
    let insertions = r#" {}();:=+-*/"abcdefg0123456789 boxed post global render"#;
    (
        0usize..SEED_SRC.len(),
        0usize..16,
        proptest::sample::select(
            insertions.chars().map(|c| c.to_string()).collect::<Vec<_>>(),
        ),
        prop_oneof![Just(0u8), Just(1u8), Just(2u8)],
    )
        .prop_map(|(pos, len, ins, kind)| {
            let mut src = SEED_SRC.to_string();
            // Snap to a char boundary.
            let mut at = pos.min(src.len());
            while !src.is_char_boundary(at) {
                at -= 1;
            }
            match kind {
                0 => src.insert_str(at, &ins), // insertion
                1 => {
                    // deletion
                    let mut end = (at + len).min(src.len());
                    while !src.is_char_boundary(end) {
                        end -= 1;
                    }
                    src.replace_range(at..end.max(at), "");
                }
                _ => {
                    // replacement
                    let mut end = (at + len).min(src.len());
                    while !src.is_char_boundary(end) {
                        end -= 1;
                    }
                    src.replace_range(at..end.max(at), &ins);
                }
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whatever the keystroke does, the session stays alive: the edit is
    /// either applied (system now runs the new code) or rejected (old
    /// code keeps running), and the state is well-typed either way.
    #[test]
    fn random_edits_never_kill_the_session(mutated in mutated_source()) {
        let mut session = LiveSession::new(SEED_SRC).expect("seed compiles");
        session.tap_path(&[0]).expect("tap");
        let before_view = session.live_view().expect("renders");

        match session.edit_source(&mutated) {
            Ok(outcome) => {
                assert_well_typed(session.system());
                prop_assert!(session.system().is_stable());
                if !outcome.is_applied() {
                    // Rejected: the old program must be untouched.
                    prop_assert_eq!(session.source(), SEED_SRC);
                    prop_assert_eq!(
                        session.live_view().expect("renders"),
                        before_view.clone()
                    );
                }
            }
            Err(_) => {
                // The accepted new code may legitimately diverge at run
                // time (e.g. a mutated loop bound); the error must be a
                // runtime report, never a panic — reaching here proves
                // that. Nothing further to check: the session object is
                // still usable for a next edit.
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fix-up soundness
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<f64>().prop_map(Value::Number),
        ".{0,12}".prop_map(|s: String| Value::str(s)),
        any::<bool>().prop_map(Value::Bool),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::tuple),
            proptest::collection::vec(inner, 0..4).prop_map(Value::list),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `C' : S ▷ S'` keeps exactly the entries whose value inhabits the
    /// declared type; the kept store re-fixes to itself (idempotence).
    #[test]
    fn fixup_keeps_exactly_the_well_typed(entries in proptest::collection::vec(
        (prop_oneof![Just("count"), Just("label"), Just("ghost")], arb_value()),
        0..6,
    )) {
        let program = compile(SEED_SRC).expect("compiles");
        let mut store = Store::new();
        for (name, value) in &entries {
            store.set(*name, value.clone());
        }
        let (fixed, report) = fixup_store(&program, &store);
        for (name, value) in fixed.iter() {
            let decl = program.global(name).expect("kept entries are declared");
            prop_assert!(value.has_type(&decl.ty));
        }
        prop_assert_eq!(
            fixed.len() + report.dropped_globals.len(),
            store.len()
        );
        let (refixed, report2) = fixup_store(&program, &fixed);
        prop_assert_eq!(&refixed, &fixed, "fix-up is idempotent");
        prop_assert!(report2.dropped_globals.is_empty());
    }
}

// ---------------------------------------------------------------------
// Layout geometry
// ---------------------------------------------------------------------

fn arb_box_tree() -> impl Strategy<Value = BoxNode> {
    let leaf = ("[a-z]{0,6}", 0u8..3, 0u8..3, any::<bool>()).prop_map(
        |(text, margin, padding, horizontal)| {
            let mut node = BoxNode::new(None);
            node.items.push(BoxItem::Attr(Attr::Margin, Value::Number(margin.into())));
            node.items
                .push(BoxItem::Attr(Attr::Padding, Value::Number(padding.into())));
            if horizontal {
                node.items.push(BoxItem::Attr(Attr::Horizontal, Value::Bool(true)));
            }
            if !text.is_empty() {
                node.items.push(BoxItem::Leaf(Value::str(text)));
            }
            node
        },
    );
    leaf.prop_recursive(3, 20, 4, |inner| {
        (inner.clone(), proptest::collection::vec(inner, 0..4)).prop_map(
            |(mut node, children)| {
                for child in children {
                    node.items.push(BoxItem::Child(child));
                }
                node
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Geometry invariants of the layout substrate.
    #[test]
    fn layout_geometry_is_sane(root in arb_box_tree()) {
        let tree = layout(&root);
        tree.root.walk(&mut |node| {
            // Children (including their margins) stay inside the parent.
            let mut child_rects = Vec::new();
            for item in &node.items {
                if let LayoutItem::Child(c) = item {
                    let m = c.style.margin;
                    let outer = c.rect;
                    assert!(outer.left() - m >= node.rect.left(), "left overflow");
                    assert!(outer.top() - m >= node.rect.top(), "top overflow");
                    assert!(outer.right() + m <= node.rect.right(), "right overflow");
                    assert!(outer.bottom() + m <= node.rect.bottom(), "bottom overflow");
                    child_rects.push(outer);
                }
            }
            // Siblings never overlap.
            for (i, a) in child_rects.iter().enumerate() {
                for b in child_rects.iter().skip(i + 1) {
                    let disjoint = a.right() <= b.left()
                        || b.right() <= a.left()
                        || a.bottom() <= b.top()
                        || b.bottom() <= a.top()
                        || a.size.is_empty()
                        || b.size.is_empty();
                    assert!(disjoint, "siblings overlap: {a} vs {b}");
                }
            }
        });

        // Hit-testing agrees with rectangles: hitting a box's top-left
        // cell finds that box or one of its descendants.
        tree.root.walk(&mut |node| {
            if node.rect.size.is_empty() {
                return;
            }
            let p = Point::new(node.rect.left(), node.rect.top());
            let hit = hit_test(&tree, p).expect("inside the root");
            assert!(
                hit.starts_with(&node.path[..]) || node.path.starts_with(&hit[..]),
                "hit {hit:?} unrelated to box {:?}",
                node.path
            );
        });
    }
}

// ---------------------------------------------------------------------
// Pretty-printer and text edits
// ---------------------------------------------------------------------

fn arb_expr_src() -> impl Strategy<Value = String> {
    // Generate well-formed expression source via a tiny grammar.
    let leaf = prop_oneof![
        (0u32..1000).prop_map(|n| n.to_string()),
        Just("true".to_string()),
        Just("false".to_string()),
        "[a-z]{1,5}".prop_map(|s| format!("\"{s}\"")),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} ++ {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}, {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("({a}, {b}).1")),
            inner.clone().prop_map(|a| format!("[{a}]")),
            inner.prop_map(|a| format!("-({a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// pretty ∘ parse is idempotent: printing a parsed expression and
    /// re-parsing yields the same print.
    #[test]
    fn pretty_print_is_idempotent(src in arb_expr_src()) {
        let first = parse_expr(&src).expect("generated source parses");
        let printed = pretty_expr(&first);
        let second = parse_expr(&printed)
            .unwrap_or_else(|e| panic!("pretty output must parse: {printed:?}: {e}"));
        prop_assert_eq!(printed.clone(), pretty_expr(&second));
    }

    /// Batch edit application agrees with right-to-left one-at-a-time
    /// application.
    #[test]
    fn batch_edits_agree_with_sequential(
        text in "[a-z]{10,40}",
        cuts in proptest::collection::vec((0usize..40, 0usize..5, "[A-Z]{0,3}"), 0..5),
    ) {
        // Build non-overlapping edits by sorting and deduplicating.
        let mut edits: Vec<TextEdit> = Vec::new();
        let mut taken: Vec<(u32, u32)> = Vec::new();
        for (start, len, replacement) in cuts {
            let start = start.min(text.len()) as u32;
            let end = (start + len as u32).min(text.len() as u32);
            if taken.iter().any(|&(s, e)| start < e && s < end
                || (start == s && end == e)
                || (start == s && (start == end || s == e))) {
                continue;
            }
            taken.push((start, end));
            edits.push(TextEdit::replace(Span::new(start, end), replacement));
        }
        let batch = apply_edits(&text, &edits).expect("non-overlapping");
        // Sequentially, right to left so spans stay valid.
        let mut sequential = text.clone();
        let mut sorted = edits.clone();
        sorted.sort_by_key(|e| std::cmp::Reverse(e.span.start));
        for e in sorted {
            sequential.replace_range(
                e.span.start as usize..e.span.end as usize,
                &e.replacement,
            );
        }
        prop_assert_eq!(batch, sequential);
    }
}
