//! Golden session trace: the paper's whole §2/§3 editing session —
//! navigate, edit the term, apply I1–I3 live, go back — recorded once
//! into `tests/data/mortgage_session.trace` and replayed on every test
//! run. Any semantic drift (parser, evaluator, layout, fix-up) shows up
//! as a replay divergence here.

use its_alive::apps::mortgage;
use its_alive::live::{RecordingSession, SessionTrace};

const GOLDEN_PATH: &str = "tests/data/mortgage_session.trace";

/// Re-record the golden trace (run with
/// `cargo test --test golden_trace -- --ignored bless`).
fn record() -> (RecordingSession, SessionTrace) {
    let src = mortgage::mortgage_src(5);
    let mut rec = RecordingSession::new(&src).expect("starts");
    rec.tap_path(&[1, 1]).expect("open second listing");
    rec.edit_box(&[2, 0], "15").expect("term := 15");
    rec.edit_source(&mortgage::apply_improvement_i2(&src));
    let with_i2 = rec.session().source().to_string();
    rec.edit_source(&mortgage::apply_improvement_i3(&with_i2));
    rec.back().expect("back to listings");
    let with_i3 = rec.session().source().to_string();
    rec.edit_source(&mortgage::apply_improvement_i1(&with_i3));
    let trace = rec.trace().clone();
    (rec, trace)
}

#[test]
#[ignore = "bless: regenerates the golden trace file"]
fn bless_golden_trace() {
    let (_, trace) = record();
    std::fs::create_dir_all("tests/data").expect("mkdir");
    std::fs::write(GOLDEN_PATH, trace.serialize()).expect("write");
}

#[test]
fn golden_trace_replays_to_the_same_session() {
    const REBLESS: &str = "golden trace out of date — if the change in \
         behavior is intended, regenerate it with:\n  cargo test --test \
         golden_trace -- --ignored bless_golden_trace";
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH}: {e}\n{REBLESS}"));
    let golden = SessionTrace::parse(&text)
        .unwrap_or_else(|e| panic!("cannot parse {GOLDEN_PATH}: {e}\n{REBLESS}"));

    // Replaying the checked-in trace reproduces the live recording.
    let (mut recorded, fresh_trace) = record();
    assert_eq!(
        fresh_trace, golden,
        "the recording script drifted.\n{REBLESS}"
    );
    let mut replayed = golden.replay().expect("replays");
    assert_eq!(
        recorded.live_view(),
        replayed.live_view(),
        "replay diverged from the recording"
    );
    assert_eq!(
        recorded.session().system().store(),
        replayed.system().store()
    );

    // The final state is the paper's: back on the listings page, with
    // the improved margins, the model keeping term = 15.
    assert_eq!(
        replayed.system().current_page().map(|(n, _)| n),
        Some("start")
    );
    assert!(replayed.source().contains("box.margin := 2;"), "I1 applied");
    assert!(replayed.source().contains("cents"), "I2 applied");
    assert!(
        replayed.source().contains("math.mod(i, 5) == 4"),
        "I3 applied"
    );
    assert_eq!(
        replayed.system().store().get("term"),
        Some(&its_alive::core::Value::Number(15.0))
    );
    // One download for the whole session.
    assert_eq!(replayed.system().cost().prim.web_requests, 1);
}
