//! The incremental compiler is observationally identical to the full
//! compiler across random edit sequences: same definitions, same core
//! bodies (compared via the core pretty-printer), same spans for
//! `boxed`/`remember` statements (navigation depends on them).

use alive_testkit::{prop, prop_assert_eq};
use its_alive::core::pretty::pretty_expr;
use its_alive::core::{compile, IncrementalCompiler, Program};

fn fingerprint(p: &Program) -> Vec<String> {
    let mut out = Vec::new();
    for g in p.globals() {
        out.push(format!(
            "global {} : {} = {} @{}",
            g.name,
            g.ty,
            pretty_expr(&g.init, 64),
            g.span
        ));
    }
    for f in p.funs() {
        out.push(format!(
            "fun {}({:?}) : {} {} = {} @{}",
            f.name,
            f.params
                .iter()
                .map(|p| format!("{}:{}", p.name, p.ty))
                .collect::<Vec<_>>(),
            f.ret,
            f.effect,
            pretty_expr(&f.body, 64),
            f.span,
        ));
    }
    for pg in p.pages() {
        out.push(format!(
            "page {} init={} render={} @{}",
            pg.name,
            pretty_expr(&pg.init, 64),
            pretty_expr(&pg.render, 64),
            pg.span,
        ));
    }
    out.push(format!("box_spans {:?}", p.box_spans));
    out.push(format!("remember_spans {:?}", p.remember_spans));
    out
}

const SEED: &str = "global total : number = 0
fun add(x : number) : number pure { x + total }
fun show(n : number) : () render { boxed { post n; } }
page start() {
    init { total := add(5); }
    render {
        boxed {
            remember hits : number = 0;
            post hits;
            on tap { hits := hits + 1; }
        }
        show(total);
    }
}
page detail(n : number) {
    render { boxed { post n; } }
}
";

/// A pool of plausible whole-item edits.
fn edits() -> Vec<fn(&str) -> String> {
    vec![
        |s| s.replace("x + total", "x * 2 + total"),
        |s| s.replace("total := add(5);", "total := add(7) + 1;"),
        |s| s.replace("post n;", "post \"n: \" ++ n;"),
        |s| {
            s.replace(
                "remember hits : number = 0;",
                "remember hits : number = 10;",
            )
        },
        |s| format!("{s}\nglobal extra : string = \"x\"\n"),
        |s| s.replace("\nglobal extra : string = \"x\"\n", ""),
        |s| {
            s.replace(
                "page detail(n : number) {",
                "page detail(n : number) {\n    init { }",
            )
        },
        |s| s.to_string(), // no-op keystroke
    ]
}

#[test]
fn incremental_compiler_matches_full_compiler() {
    prop::check(
        "incremental_compiler_matches_full_compiler",
        prop::Config::with_cases(64),
        |rng| {
            let n = rng.gen_range(1..12);
            (0..n).map(|_| rng.below(8)).collect::<Vec<usize>>()
        },
        |sequence: &Vec<usize>| {
            let pool = edits();
            let mut compiler = IncrementalCompiler::new();
            let mut src = SEED.to_string();
            // Initial compile.
            let inc = compiler.compile(&src).expect("seed compiles");
            let full = compile(&src).expect("seed compiles");
            prop_assert_eq!(fingerprint(&inc), fingerprint(&full));

            for &choice in sequence {
                src = pool[choice](&src);
                match (compiler.compile(&src), compile(&src)) {
                    (Ok(inc), Ok(full)) => {
                        prop_assert_eq!(fingerprint(&inc), fingerprint(&full));
                    }
                    (Err(inc_err), Err(full_err)) => {
                        prop_assert_eq!(inc_err.to_string(), full_err.to_string());
                    }
                    (inc, full) => {
                        return Err(format!(
                            "accept/reject disagreement: inc={:?} full={:?}",
                            inc.is_ok(),
                            full.is_ok()
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn incremental_survives_duplicate_identical_items() {
    // Two byte-identical chunks must not confuse the move-based cache.
    let src = "fun a() : number pure { 1 }
page start() { render { post a(); } }
";
    let dup = format!("{src}fun b() : number pure {{ 1 }}\n");
    let mut compiler = IncrementalCompiler::new();
    compiler.compile(src).expect("compiles");
    let inc = compiler.compile(&dup).expect("compiles");
    let full = compile(&dup).expect("compiles");
    assert_eq!(fingerprint(&inc), fingerprint(&full));
}
