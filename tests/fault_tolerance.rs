//! Fault-containment suite: the transactional-transition and
//! last-good-display guarantees, end to end through [`LiveSession`].
//!
//! Four mandated properties:
//!
//! 1. a faulting handler rolls the store back byte-identically;
//! 2. a type-correct edit whose render diverges is auto-reverted
//!    (quarantined) and counted as a rejection;
//! 3. the last good view survives a run of consecutive faults of
//!    mixed kinds;
//! 4. a 256-iteration random walk over taps, edits, undo, back, and
//!    deterministically injected faults never kills the session —
//!    `live_view()` always renders and handler faults never leak into
//!    the store.
//!
//! All walks run on the `alive-testkit` property harness: failures
//! print a seed, and `ALIVE_TESTKIT_SEED=<seed> cargo test` replays
//! the identical cases, fault injections included, because the
//! [`FaultPlan`] rules are part of the generated case.

use alive_testkit::{prop, prop_assert, prop_assert_eq, FaultPlan, Rng, Shrink};
use its_alive::core::prim::Prim;
use its_alive::core::state_typing::assert_well_typed;
use its_alive::core::system::SystemConfig;
use its_alive::core::{FaultKind, TransitionKind, Value};
use its_alive::live::{EditOutcome, LiveSession, SessionError};

/// A tight fuel budget (a.k.a. the configurable divergence bound from
/// [`SystemConfig`]): diverging renders are caught after thousands of
/// steps instead of the interactive default of millions, which keeps
/// the 256-case walk fast without changing any semantics.
fn fast_session(source: &str) -> Result<LiveSession, its_alive::live::SessionError> {
    LiveSession::with_options(
        source,
        SystemConfig {
            fuel: 50_000,
            max_transitions: 500,
            ..SystemConfig::default()
        },
        false,
    )
}

const APP: &str = r#"
global count : number = 0
page start() {
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + math.abs(0 - 1); }
        }
        boxed {
            post "open detail";
            on tap { push detail(count); }
        }
    }
}
page detail(n : number) {
    render {
        boxed { post "detail of " ++ n; on tap { pop; } }
    }
}
"#;

// ---------------------------------------------------------------------
// 1. Store rollback after a faulting handler
// ---------------------------------------------------------------------

#[test]
fn faulting_handler_leaves_store_byte_identical() {
    let mut session = LiveSession::new(APP).expect("starts");
    session.tap_path(&[0]).expect("tap"); // count = 1, math.abs call #1

    let before_store = session.system().store().clone();
    let before_snap = session.system().snapshot().expect("snapshots");
    let before_view = session.live_view();

    // The plan counts from installation: the next math.abs evaluation
    // — the second tap's handler — is its call #1, and fails.
    let plan = FaultPlan::new().fail_prim(Prim::MathAbs, 1).shared();
    session.system_mut().set_fault_injector(plan.clone());

    session.tap_path(&[0]).expect("tap is delivered");
    assert_eq!(plan.lock().unwrap().injected(), 1);
    assert_eq!(session.fault_log().total(), 1);
    let fault = session.fault_log().latest().expect("logged");
    assert_eq!(fault.kind, FaultKind::Handler);
    assert_eq!(fault.page.as_deref(), Some("start"));

    // The transaction rolled back: the store is byte-identical (same
    // serialized snapshot, same in-memory value) and the view is the
    // last good one.
    assert_eq!(session.system().store(), &before_store);
    assert_eq!(
        session.system().snapshot().expect("snapshots"),
        before_snap,
        "snapshot is byte-identical after the handler fault"
    );
    assert_eq!(session.live_view(), before_view);

    // The event was consumed, not requeued: the session is alive and
    // the third tap commits normally.
    session.tap_path(&[0]).expect("tap");
    assert_eq!(
        session.system().store().get("count"),
        Some(&Value::Number(2.0))
    );
    assert_eq!(session.fault_log().total(), 1, "no further faults");
}

// ---------------------------------------------------------------------
// 2. Auto-revert (quarantine) of a type-correct but diverging edit
// ---------------------------------------------------------------------

#[test]
fn diverging_render_edit_is_auto_reverted() {
    let mut session = fast_session(APP).expect("starts");
    session.tap_path(&[0]).expect("tap"); // count = 1
    let (applied_before, rejected_before) = session.update_counts();
    let good_view = session.live_view();

    // Type-correct — the type system cannot reject it — but the render
    // body diverges the moment it runs.
    let diverging = APP.replace(
        "post \"count is \" ++ count;",
        "while true { count; } post \"never\";",
    );
    let outcome = session.edit_source(&diverging);
    let EditOutcome::Quarantined { fault, .. } = outcome else {
        panic!("expected quarantine, got {outcome:?}");
    };
    assert_eq!(fault.kind, FaultKind::Render);

    // Auto-reverted: the old source is live again, the model survived,
    // and the books count the edit as a rejection.
    assert_eq!(session.source(), APP);
    assert_eq!(session.live_view(), good_view);
    assert_eq!(
        session.system().store().get("count"),
        Some(&Value::Number(1.0))
    );
    assert_eq!(
        session.update_counts(),
        (applied_before, rejected_before + 1),
        "quarantine is reported like a rejection"
    );

    // Fully alive afterwards: a good edit applies and taps run.
    let fixed = APP.replace("count is", "n =");
    assert!(session.edit_source(&fixed).is_applied());
    session.tap_path(&[0]).expect("tap");
    assert!(session.live_view().contains("n = 2"));
}

// ---------------------------------------------------------------------
// 3. Last good view across three consecutive faults of mixed kinds
// ---------------------------------------------------------------------

#[test]
fn last_good_view_survives_three_consecutive_faults() {
    let mut session = LiveSession::new(APP).expect("starts");
    session.tap_path(&[0]).expect("tap"); // count = 1
    let good_view = session.live_view();
    assert!(good_view.contains("count is 1"));

    // Counting from installation: faults 1 and 2 fail the handlers of
    // the next two taps (math.abs calls #1 and #2 the plan observes).
    // Handler faults re-instate the last good tree as Stale without a
    // re-render, so the first render the plan ever sees is the third
    // tap's — fault 3 lets that handler commit but starves the render.
    let plan = FaultPlan::new()
        .fail_prim(Prim::MathAbs, 1)
        .fail_prim(Prim::MathAbs, 2)
        .throttle_fuel(TransitionKind::Render, 1, 1)
        .shared();
    session.system_mut().set_fault_injector(plan.clone());

    // Fault 1 — handler: dropped event, store intact, same view.
    session.tap_path(&[0]).expect("tap");
    assert_eq!(session.fault_log().total(), 1);
    assert_eq!(session.live_view(), good_view);

    // Fault 2 — handler again, on the (re-rendered) last good tree.
    session
        .tap_path(&[0])
        .expect("stale tree stays interactive");
    assert_eq!(session.fault_log().total(), 2);
    assert_eq!(session.live_view(), good_view);

    // Fault 3 — render: the handler commits (count = 2) but the render
    // is starved, so the *display* keeps the last good tree while the
    // store has moved on. That is exactly the stale-on-fault contract.
    session.tap_path(&[0]).expect("tap");
    assert_eq!(session.fault_log().total(), 3);
    assert_eq!(
        session.fault_log().latest().map(|f| f.kind),
        Some(FaultKind::Render)
    );
    assert_eq!(
        session.system().store().get("count"),
        Some(&Value::Number(2.0))
    );
    assert_eq!(session.live_view(), good_view, "stale last-good view");

    let banner = session.fault_banner().expect("banner up");
    assert!(banner.contains("3 faults total"), "{banner}");

    // Recovery: the next tap invalidates, the handler and render both
    // succeed, and the display catches up with the store.
    session.tap_path(&[0]).expect("tap");
    assert!(session.live_view().contains("count is 3"));
    assert_eq!(plan.lock().unwrap().injected(), 2);
    assert_eq!(plan.lock().unwrap().throttled(), 1);
}

// ---------------------------------------------------------------------
// 4. Random walk with injected faults: a live session never dies
// ---------------------------------------------------------------------

/// One deterministic fault-injection rule, as generated data so the
/// shrinker can drop rules while hunting a minimal counterexample.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rule {
    /// `math.abs` fails on its Nth evaluation.
    FailAbs(u64),
    /// `list.nth` fails on its Nth evaluation.
    FailNth(u64),
    /// The Nth transition of any kind runs with 1 fuel.
    Starve(u64),
}

impl Shrink for Rule {
    fn shrink(&self) -> Vec<Rule> {
        Vec::new()
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Step {
    Tap(usize),
    Back,
    Undo,
    /// 0: benign rename; 1: syntax error (rejected); 2: diverging
    /// render (quarantined); 3: handler that faults on tap (applies
    /// cleanly, faults later).
    Edit(u8),
}

impl Shrink for Step {
    fn shrink(&self) -> Vec<Step> {
        match self {
            Step::Tap(p) => p.shrink().into_iter().map(Step::Tap).collect(),
            Step::Edit(w) => w.shrink().into_iter().map(Step::Edit).collect(),
            Step::Back | Step::Undo => Vec::new(),
        }
    }
}

fn arb_case(rng: &mut Rng) -> (Vec<Rule>, Vec<Step>) {
    let rules = (0..rng.below(4))
        .map(|_| {
            let n = rng.gen_range(1..12) as u64;
            match rng.below(3) {
                0 => Rule::FailAbs(n),
                1 => Rule::FailNth(n),
                _ => Rule::Starve(n),
            }
        })
        .collect();
    let steps = (0..rng.gen_range(1..10))
        .map(|_| match rng.below(6) {
            0 | 1 => Step::Tap(rng.below(4)),
            2 => Step::Back,
            3 => Step::Undo,
            _ => Step::Edit(rng.below(4) as u8),
        })
        .collect();
    (rules, steps)
}

fn edited(src: &str, which: u8) -> String {
    match which {
        0 => src.replace("open detail", "more..."),
        1 => src.replace("render {", "render {{"),
        2 => src.replace(
            "post \"count is \" ++ count;",
            "while true { count; } post \"never\";",
        ),
        _ => src.replace(
            "on tap { count := count + math.abs(0 - 1); }",
            "on tap { count := list.nth([1], 9); }",
        ),
    }
}

fn drive(session: &mut LiveSession, step: &Step) -> Result<(), String> {
    match step {
        Step::Tap(p) => match session.tap_path(&[*p]) {
            // Misses and transiently-invalid displays are legal no-ops.
            Ok(()) | Err(SessionError::Action(_)) => Ok(()),
            Err(e) => Err(format!("tap {p}: {e}")),
        },
        Step::Back => match session.back() {
            Ok(()) | Err(SessionError::Action(_)) => Ok(()),
            Err(e) => Err(format!("back: {e}")),
        },
        Step::Undo => {
            session.undo();
            Ok(())
        }
        Step::Edit(w) => {
            let new_src = edited(session.source(), *w);
            // Total by design: applied, rejected, or quarantined.
            let _ = session.edit_source(&new_src);
            Ok(())
        }
    }
}

#[test]
fn random_walk_with_faults_never_kills_the_session() {
    prop::check(
        "random_walk_with_faults_never_kills_the_session",
        prop::Config::with_cases(256),
        arb_case,
        |(rules, steps): &(Vec<Rule>, Vec<Step>)| {
            let mut session = fast_session(APP).expect("starts");
            let mut plan = FaultPlan::new();
            for rule in rules {
                plan = match *rule {
                    Rule::FailAbs(n) => plan.fail_prim(Prim::MathAbs, n),
                    Rule::FailNth(n) => plan.fail_prim(Prim::ListNth, n),
                    Rule::Starve(n) => plan.throttle_any_fuel(n, 1),
                };
            }
            session.system_mut().set_fault_injector(plan.shared());

            for step in steps {
                let store_before = session.system().store().clone();
                let source_before = session.source().to_string();
                let faults_before = session.fault_log().total();

                drive(&mut session, step)?;

                // Never dies: the view always renders (a real tree or
                // the explicit degraded placeholder), the model stays
                // well-typed against the live program.
                let view = session.live_view();
                prop_assert!(!view.is_empty(), "live_view went blank");
                assert_well_typed(session.system());

                let new_faults = session.fault_log().total() - faults_before;
                let logged: Vec<_> = session.fault_log().iter().collect();
                let fresh = logged
                    .len()
                    .saturating_sub((session.fault_log().total() - new_faults) as usize);
                let all_handler = new_faults > 0
                    && logged[logged.len() - fresh..]
                        .iter()
                        .all(|f| f.kind == FaultKind::Handler);
                // Handler faults are transactional: if a non-edit step
                // produced only handler faults, nothing committed.
                if all_handler && !matches!(step, Step::Edit(_)) {
                    prop_assert_eq!(session.system().store(), &store_before);
                }
                // Quarantined edits revert source AND store.
                if matches!(step, Step::Edit(_)) && session.source() == source_before {
                    prop_assert_eq!(session.system().store(), &store_before);
                }
            }

            // Still alive at the end of the walk: a good edit applies
            // on top of whatever degraded state the walk produced.
            let outcome = session.edit_source(APP);
            prop_assert!(
                outcome.is_applied() || outcome.is_quarantined(),
                "final known-good edit neither applied nor quarantined: {:?}",
                outcome
            );
            prop_assert!(!session.live_view().is_empty());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// 5. The same walk over the whole scenario corpus
// ---------------------------------------------------------------------

/// Corpus-generic source mutators: every corpus program has a
/// `render {` to diverge, an `on tap {` to poison, and room for a
/// benign probe item — so the same four edit classes (benign /
/// rejected / quarantined / fault-on-tap) apply to all 20 programs.
fn edited_generic(src: &str, which: u8) -> String {
    match which {
        // Benign toggle: add (or remove) a self-checking example probe.
        0 => {
            let probe = "example walk_probe = 1 expect 1\n";
            if src.contains(probe) {
                src.replace(probe, "")
            } else {
                format!("{src}{probe}")
            }
        }
        // Syntax error: rejected, the old program keeps running.
        1 => src.replace("render {", "render {{"),
        // Diverging main render: type-correct, quarantined on arrival.
        2 => src.replacen("render {", "render { while true { 0; }", 1),
        // First tap handler faults when (and only when) tapped.
        _ => src.replacen("on tap {", "on tap { list.nth([1], 9); ", 1),
    }
}

#[test]
fn corpus_walk_with_faults_never_kills_any_scenario() {
    for entry in alive_corpus::corpus() {
        let name = entry.spec.name();
        let width = entry.spec.size.rows() + 4;
        let original = entry.source.clone();
        prop::check(
            &format!("corpus_fault_walk_{name}"),
            prop::Config::with_cases(6),
            arb_case,
            |(rules, steps): &(Vec<Rule>, Vec<Step>)| {
                let mut session = LiveSession::with_options(
                    &original,
                    SystemConfig {
                        fuel: 500_000,
                        max_transitions: 500,
                        ..SystemConfig::default()
                    },
                    false,
                )
                .unwrap_or_else(|e| panic!("{name} starts: {e}"));
                let mut plan = FaultPlan::new();
                for rule in rules {
                    plan = match *rule {
                        Rule::FailAbs(n) => plan.fail_prim(Prim::MathAbs, n),
                        Rule::FailNth(n) => plan.fail_prim(Prim::ListNth, n),
                        Rule::Starve(n) => plan.throttle_any_fuel(n, 1),
                    };
                }
                session.system_mut().set_fault_injector(plan.shared());

                for step in steps {
                    let store_before = session.system().store().clone();
                    let source_before = session.source().to_string();

                    // The corpus walk scales the tap fan to the program
                    // and swaps in the corpus-generic edits.
                    match step {
                        Step::Tap(p) => {
                            let p = p % width;
                            match session.tap_path(&[p]) {
                                Ok(()) | Err(SessionError::Action(_)) => {}
                                Err(e) => return Err(format!("{name}: tap {p}: {e}")),
                            }
                        }
                        Step::Back => match session.back() {
                            Ok(()) | Err(SessionError::Action(_)) => {}
                            Err(e) => return Err(format!("{name}: back: {e}")),
                        },
                        Step::Undo => {
                            session.undo();
                        }
                        Step::Edit(w) => {
                            let new_src = edited_generic(session.source(), *w);
                            let _ = session.edit_source(&new_src);
                        }
                    }

                    let view = session.live_view();
                    prop_assert!(!view.is_empty(), "{}: live_view went blank", name);
                    assert_well_typed(session.system());
                    // Quarantined edits revert source AND store.
                    if matches!(step, Step::Edit(_)) && session.source() == source_before {
                        prop_assert_eq!(session.system().store(), &store_before);
                    }
                }

                // Still alive: restoring the pristine corpus source
                // applies (or quarantines under an active fault rule).
                let outcome = session.edit_source(&original);
                prop_assert!(
                    outcome.is_applied() || outcome.is_quarantined(),
                    "{}: final known-good edit neither applied nor quarantined: {:?}",
                    name,
                    outcome
                );
                prop_assert!(!session.live_view().is_empty());
                Ok(())
            },
        );
    }
}

/// The replay contract the walk leans on: the same seed generates the
/// identical (rules, steps) cases — so `ALIVE_TESTKIT_SEED` reproduces
/// a failure's fault injections exactly, not just its UI actions.
#[test]
fn fault_walk_cases_replay_byte_for_byte() {
    use std::cell::RefCell;

    type Case = (Vec<Rule>, Vec<Step>);
    let cfg = prop::Config::with_cases(16).seeded(0xFA17_2013);
    let capture = || {
        let seen: RefCell<Vec<Case>> = RefCell::new(Vec::new());
        let failed = prop::check_captured(&cfg, arb_case, |case: &Case| {
            seen.borrow_mut().push(case.clone());
            Ok(())
        });
        assert!(failed.is_none());
        seen.into_inner()
    };
    let first = capture();
    let second = capture();
    assert_eq!(first.len(), 16);
    assert_eq!(first, second, "same seed, same fault plans and steps");
}
