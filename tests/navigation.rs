//! E9 — bidirectional UI↔code navigation (paper Figure 2) on the real
//! mortgage calculator, including the one-to-many case: "a selected
//! boxed statement appearing inside a loop corresponds to multiple
//! boxes in the display, which are collectively selected".

use its_alive::apps::mortgage;
use its_alive::live::{box_source_at, boxes_for_cursor, span_for_box, LiveSession};
use its_alive::ui::{hit_stack, hit_test, layout, Point};

fn session() -> LiveSession {
    LiveSession::new(&mortgage::mortgage_src(6)).expect("compiles")
}

#[test]
fn every_box_maps_to_a_boxed_statement() {
    let mut s = session();
    let display = s.display_tree().expect("renders");
    let mut checked = 0;
    display.walk(&mut |path, node| {
        if path.is_empty() {
            return; // the implicit top-level box has no statement
        }
        let span = span_for_box(s.system().program(), &display, path)
            .unwrap_or_else(|| panic!("box {path:?} has no source span"));
        let text = span.slice(s.source());
        assert!(text.starts_with("boxed"), "span text: {text:?}");
        checked += 1;
        let _ = node;
    });
    assert!(checked >= 8, "walked the whole display ({checked} boxes)");
}

#[test]
fn loop_statement_selects_all_listing_rows() {
    let mut s = session();
    let display = s.display_tree().expect("renders");
    // Cursor inside the `boxed` statement of the listings loop.
    let cursor = s.source().find("display_listentry(entry);").expect("found") as u32;
    let boxes = boxes_for_cursor(s.system().program(), &display, cursor);
    assert_eq!(boxes.len(), 6, "six listings, six boxes");
    for (i, path) in boxes.iter().enumerate() {
        assert_eq!(path, &vec![1, i], "rows live under the listings box");
    }
}

#[test]
fn navigation_roundtrips_box_to_code_to_boxes() {
    let mut s = session();
    let display = s.display_tree().expect("renders");
    // Box → code: the header box.
    let span = span_for_box(s.system().program(), &display, &[0]).expect("maps");
    // Code → boxes: the cursor inside that span selects the same box.
    let id = box_source_at(s.system().program(), span.start + 1).expect("in boxed");
    let back = its_alive::live::boxes_for_source(&display, id);
    assert_eq!(back, vec![vec![0]]);
}

#[test]
fn screen_tap_to_code_selection() {
    // The full Figure-2 gesture: tap a pixel, find the box, find the code.
    let mut s = session();
    let display = s.display_tree().expect("renders");
    let tree = layout(&display);
    let view = s.live_view();
    let row = view
        .lines()
        .position(|l| l.contains("#2"))
        .expect("third listing") as i32;
    let path = hit_test(&tree, Point::new(2, row)).expect("hit");
    let span = span_for_box(s.system().program(), &display, &path).expect("maps");
    let text = span.slice(s.source());
    assert!(
        text.contains("post entry.1;") || text.contains("display_listentry"),
        "tapped code: {text}"
    );
}

#[test]
fn nested_selection_walks_enclosing_boxes() {
    // §5: "the user can tap the same box multiple times to select
    // enclosing boxes". The hit stack provides the chain.
    let mut s = session();
    let display = s.display_tree().expect("renders");
    let tree = layout(&display);
    let view = s.live_view();
    let row = view
        .lines()
        .position(|l| l.contains("#0"))
        .expect("first listing") as i32;
    let stack = hit_stack(&tree, Point::new(2, row));
    assert!(
        stack.len() >= 3,
        "root, listings box, row, inner: {stack:?}"
    );
    // Outermost first; each is a prefix of the next.
    for pair in stack.windows(2) {
        assert!(pair[1].starts_with(&pair[0][..]));
    }
}

#[test]
fn navigation_survives_live_edits() {
    let mut s = session();
    let improved = mortgage::apply_improvement_i1(s.source());
    assert!(s.edit_source(&improved).is_applied());
    // After the update the spans refer to the NEW source.
    let display = s.display_tree().expect("renders");
    let span = span_for_box(s.system().program(), &display, &[1, 0]).expect("maps");
    let text = span.slice(s.source());
    assert!(text.contains("box.margin := 2;"), "new-source span: {text}");
}
