//! Figure-by-figure correspondence: every rule of the paper's Figures
//! 8–12 — plus the §5 direct-manipulation workflow — is exercised by
//! name. This is the reproduction-completeness checklist — if a rule is
//! renamed or dropped in a refactor, a test here fails.

use its_alive::core::event::EventQueue;
use its_alive::core::smallstep::{self, Rule};
use its_alive::core::state_typing::check_system;
use its_alive::core::store::Store;
use its_alive::core::system::{StepKind, System};
use its_alive::core::typeck::infer_expr;
use its_alive::core::{compile, Effect, Type, Value};
use std::collections::HashSet;

fn compiled(src: &str) -> its_alive::core::Program {
    compile(src).expect("compiles")
}

fn expr_of(src: &str, context: &str) -> (its_alive::core::Program, its_alive::core::Expr) {
    // Wrap the expression in a pure function body for lowering.
    let full =
        format!("{context}\nfun probe__() : number pure {{ 0 }}\npage start() {{ render {{ }} }}");
    let with_expr = full.replace(
        "fun probe__() : number pure { 0 }",
        &format!("fun probe__() : number pure {{ let it = {src}; 0 }}"),
    );
    let p = compile(&with_expr).unwrap_or_else(|d| panic!("probe compiles: {d}"));
    let f = p.fun("probe__").expect("probe");
    // Extract the let's bound value.
    let its_alive::core::ExprKind::Let { value, .. } = &f.body.kind else {
        panic!("probe body is a let");
    };
    let e = (**value).clone();
    (p, e)
}

// ---------------------------------------------------------------------
// Figure 8 — evaluation rules, witnessed by the traced machine
// ---------------------------------------------------------------------

#[test]
fn figure8_every_kernel_rule_fires() {
    let p = compiled(
        "global g : number = 1
         fun id(x: number): number pure { x }
         page start() {
             init {
                 g := id((g, 2).1) + (fn(y: number) -> y)(3);
                 push start();
                 pop;
             }
             render {
                 boxed {
                     post g;
                     box.margin := 1;
                 }
             }
         }",
    );
    let page = p.page("start").expect("page");
    let mut store = Store::new();
    let mut queue = EventQueue::new();
    let init = smallstep::eval_state_traced(&p, &mut store, &mut queue, 100_000, &page.init)
        .expect("runs");
    let render =
        smallstep::eval_render_traced(&p, &mut store, 100_000, &page.render).expect("runs");
    let rules: HashSet<Rule> = init
        .trace
        .iter()
        .flatten()
        .chain(render.trace.iter().flatten())
        .copied()
        .collect();
    for expected in [
        Rule::EpFun,     // EP-FUN: unfolding `id`
        Rule::EpApp,     // EP-APP: β for `id` and the lambda
        Rule::EpTuple,   // EP-TUPLE: (g, 2).1
        Rule::EpGlobal2, // EP-GLOBAL-2: first read of g (not in store)
        Rule::EpGlobal1, // EP-GLOBAL-1: render reads g from the store
        Rule::EsAssign,  // ES-ASSIGN
        Rule::EsPush,    // ES-PUSH
        Rule::EsPop,     // ES-POP
        Rule::ErBoxed,   // ER-BOXED
        Rule::ErPost,    // ER-POST
        Rule::ErAttr,    // ER-ATTR
    ] {
        assert!(
            rules.contains(&expected),
            "rule {expected} never fired: {rules:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Figure 9 — system transitions
// ---------------------------------------------------------------------

#[test]
fn figure9_startup_push_render_tap_thunk_back_pop() {
    let mut sys = System::new(compiled(
        "global n : number = 0
         page start() {
             render { boxed { post n; on tap { n := n + 1; } } }
         }",
    ));
    // STARTUP, PUSH, RENDER.
    let kinds = sys.run_to_stable().expect("starts");
    assert_eq!(
        kinds,
        vec![StepKind::Startup, StepKind::Push, StepKind::Render]
    );
    // TAP enqueues [exec v] and invalidates D (premise: valid display).
    sys.tap(&[0]).expect("tap");
    assert!(!sys.display().is_valid());
    // THUNK then RENDER.
    let kinds = sys.run_to_stable().expect("handles");
    assert_eq!(kinds, vec![StepKind::Thunk, StepKind::Render]);
    // BACK enqueues [pop]; POP empties the stack; STARTUP re-enters.
    sys.back();
    let kinds = sys.run_to_stable().expect("pops");
    assert_eq!(
        kinds,
        vec![
            StepKind::Pop,
            StepKind::Startup,
            StepKind::Push,
            StepKind::Render
        ]
    );
}

#[test]
fn figure9_pop_on_empty_stack_is_a_no_op() {
    // (POP) allows P = P' = ε.
    let mut sys = System::new(compiled("page start() { render { } }"));
    sys.back(); // [pop] with an empty-but-for-startup situation
    sys.run_to_stable().expect("survives");
    assert!(sys.is_stable());
}

#[test]
fn figure9_update_requires_a_drained_queue() {
    // The paper's (UPDATE) premise is stability; we relax it to "no
    // events in flight" so a degraded (faulted) machine can still take
    // the fixing edit — but an undrained queue still blocks the update.
    let p1 = compiled("page start() { render { } }");
    let p2 = compiled("page start() { render { boxed { } } }");
    let mut sys = System::new(p1);
    sys.step().expect("startup enqueues push");
    assert!(sys.update(p2.clone()).is_err(), "push in flight: blocked");
    sys.run_to_stable().expect("starts");
    assert!(sys.update(p2).is_ok(), "drained: update enabled");
}

// ---------------------------------------------------------------------
// Figure 10 — expression typing
// ---------------------------------------------------------------------

#[test]
fn figure10_t_int_string_tuple_proj() {
    let (p, e) = expr_of("((1, \"a\").1)", "");
    assert_eq!(infer_expr(&p, Effect::Pure, &e), Ok(Type::Number)); // T-INT + T-TUPLE + T-PROJ
    let (p, e) = expr_of("(\"s\", 2).1", "");
    assert_eq!(infer_expr(&p, Effect::Pure, &e), Ok(Type::String)); // T-STRING
}

#[test]
fn figure10_t_lam_and_t_app() {
    let (p, e) = expr_of("(fn(x: number) -> x + 1)(41)", "");
    assert_eq!(infer_expr(&p, Effect::Pure, &e), Ok(Type::Number));
}

#[test]
fn figure10_t_fun_and_t_global() {
    let ctx = "global g : number = 7\nfun twice(x: number): number pure { x * 2 }";
    let (p, e) = expr_of("twice(g)", ctx);
    assert_eq!(infer_expr(&p, Effect::Pure, &e), Ok(Type::Number));
}

#[test]
fn figure10_t_sub_pure_functions_usable_at_any_effect() {
    // A pure helper called from state code AND from render code.
    compiled(
        "global g : number = 0
         fun pure_helper(x: number): number pure { x + 1 }
         page start() {
             init { g := pure_helper(1); }
             render { post pure_helper(g); }
         }",
    );
}

#[test]
fn figure10_t_assign_push_pop_require_state_mode() {
    for bad in [
        "global g : number = 0\npage start() { render { g := 1; } }",
        "page start() { render { pop; } }",
        "page start() { render { push start(); } }",
        // Pure code cannot assign either (T-ASSIGN is an s-judgment).
        "global g : number = 0\nfun f(): () pure { g := 1; }\npage start() { render { } }",
    ] {
        assert!(compile(bad).is_err(), "must be rejected: {bad}");
    }
}

#[test]
fn figure10_t_boxed_post_attr_require_render_mode() {
    for bad in [
        "page start() { init { boxed { } } render { } }",
        "page start() { init { post 1; } render { } }",
        "page start() { init { box.margin := 1; } render { } }",
        "fun f(): () state { post 1; }\npage start() { render { } }",
    ] {
        assert!(compile(bad).is_err(), "must be rejected: {bad}");
    }
}

#[test]
fn figure10_t_attr_checks_gamma_a() {
    // Γa(margin) = number; Γa(ontap) = () →s ().
    assert!(compile("page start() { render { boxed { box.margin := true; } } }").is_err());
    assert!(
        compile("page start() { render { boxed { box.ontap := fn() state { pop; }; } } }").is_ok()
    );
    assert!(compile("page start() { render { boxed { box.ontap := 5; } } }").is_err());
}

// ---------------------------------------------------------------------
// Figure 11 — program and state typing
// ---------------------------------------------------------------------

#[test]
fn figure11_t_sys_requires_start_page() {
    assert!(compile("global g : number = 0").is_err());
}

#[test]
fn figure11_t_c_global_requires_arrow_free() {
    assert!(compile(
        "global h : fn(number) -> number = fn(x: number) -> x
         page start() { render { } }"
    )
    .is_err());
}

#[test]
fn figure11_t_c_page_requires_arrow_free_arguments() {
    assert!(compile(
        "page start() { render { } }
         page bad(callback : fn() state -> ()) { render { } }"
    )
    .is_err());
}

#[test]
fn figure11_t_c_fun_checks_declared_type() {
    assert!(compile(
        "fun lies(): number pure { \"not a number\" }
         page start() { render { } }"
    )
    .is_err());
}

#[test]
fn figure11_duplicate_definitions_rejected() {
    assert!(compile(
        "global x : number = 0
         fun x(): number pure { 1 }
         page start() { render { } }"
    )
    .is_err());
}

#[test]
fn figure11_state_typing_accepts_reachable_states_and_flags_corruption() {
    let mut sys = System::new(compiled(
        "global n : number = 0
         page start() { render { boxed { post n; on tap { n := n + 1; } } } }",
    ));
    sys.run_to_stable().expect("starts");
    sys.tap(&[0]).expect("tap");
    // Mid-flight state (queue non-empty, display ⊥) is also well-typed:
    // T-D-INV and T-Q-EXEC.
    assert!(check_system(&sys).is_empty());
    sys.run_to_stable().expect("settles");
    assert!(check_system(&sys).is_empty());
    // Corrupt S: T-S-ENTRY must flag it.
    sys.debug_store_mut().set("n", Value::str("not a number"));
    assert!(check_system(&sys).iter().any(|e| e.component == "S"));
}

// ---------------------------------------------------------------------
// Figure 12 — fix-up
// ---------------------------------------------------------------------

#[test]
fn figure12_s_okay_s_skip_p_okay_p_skip() {
    use its_alive::core::fixup::{fixup_pages, fixup_store, DropReason, FixupReport};
    let new_code = compiled(
        "global kept : number = 0
         global retyped : string = \"s\"
         page start() { render { } }",
    );
    let mut store = Store::new();
    store.set("kept", Value::Number(5.0)); // S-OKAY
    store.set("retyped", Value::Number(9.0)); // S-SKIP (type changed)
    store.set("gone", Value::Number(1.0)); // S-SKIP (g ∉ C')
    let (fixed, report) = fixup_store(&new_code, &store);
    assert_eq!(fixed.len(), 1);
    assert!(fixed.contains("kept"));
    assert_eq!(
        report.dropped_globals,
        vec![
            (std::sync::Arc::from("gone"), DropReason::NoLongerDefined),
            (std::sync::Arc::from("retyped"), DropReason::TypeChanged),
        ]
    );

    let stack = vec![
        (
            std::sync::Arc::from("start") as its_alive::core::Name,
            Value::unit(),
        ), // P-OKAY
        (
            std::sync::Arc::from("ghost") as its_alive::core::Name,
            Value::unit(),
        ), // P-SKIP
    ];
    let mut report = FixupReport::default();
    let kept = fixup_pages(&new_code, &stack, &mut report);
    assert_eq!(kept.len(), 1);
    assert_eq!(report.dropped_pages.len(), 1);
}

/// Figure 12 at fleet scale: the paper's UPDATE transition (new code,
/// fixed-up state, same running session) is exactly what a committed
/// edit transaction fans out to every subscribed session — compiled
/// once by the host, applied per session with the same S-OKAY/S-SKIP
/// fix-up semantics the solo rule test above pins. Globals whose type
/// survives the update keep their values across the fleet UPDATE, just
/// as they do across a solo UPDATE.
#[test]
fn figure12_update_fans_out_to_the_fleet_as_an_edit_transaction() {
    use alive_serve::{HostConfig, SessionHost};
    use its_alive::live::{SessionCommand, TxPhase};
    use its_alive::syntax::{Span, TextEdit};

    const SRC: &str = r#"
global kept : number = 0
page start() {
    init { kept := kept + 1; }
    render { boxed { post "kept = " ++ kept; on tap { kept := kept + 1; } } }
}
"#;
    let host = SessionHost::new(HostConfig::with_workers(2));
    let ids: Vec<_> = (0..4)
        .map(|_| host.create_session(SRC).expect("compiles"))
        .collect();
    // Per-session state the fix-up must carry through: S-OKAY on
    // `kept` means each session keeps its own tap count.
    for (i, &id) in ids.iter().enumerate() {
        for _ in 0..i {
            host.apply(id, SessionCommand::TapPath(vec![0]))
                .expect("taps");
        }
    }

    let tx = host.tx_open(ids[0]).expect("opens");
    let needle = "kept = ";
    let at = SRC.find(needle).expect("present") as u32;
    host.tx_edit(
        tx,
        &[TextEdit::replace(
            Span::new(at, at + needle.len() as u32),
            "still ",
        )],
    )
    .expect("stages");
    assert_eq!(
        host.tx_commit(tx).expect("commits"),
        TxPhase::Promoted {
            updated: 4,
            skipped: 0
        }
    );
    assert_eq!(host.programs_compiled(), 2, "one compile for the fleet");
    for (i, &id) in ids.iter().enumerate() {
        let frame = host.latest_frame(id).expect("live").expect("settled");
        assert_eq!(
            frame.view,
            format!("still {}\n", 1 + i),
            "session {i}: UPDATE ran with S-OKAY on `kept`"
        );
    }
    host.shutdown();
}

// ---------------------------------------------------------------------
// §5 — direct manipulation: changes are enshrined in code
// ---------------------------------------------------------------------

/// The paper's direct-manipulation loop, end to end: a screen point
/// resolves through hit-testing to a rendered leaf, the leaf's
/// provenance inverts the desired value into ranked source edits, and
/// applying one "enshrines the change in code" — the program text
/// itself is rewritten, so the next render (and every later run)
/// produces the manipulated value.
#[test]
fn section5_direct_manipulation_enshrines_changes_in_code() {
    use its_alive::live::LiveSession;
    use its_alive::ui::{hit_test_leaf, layout, Point};

    let mut session = LiveSession::new(
        r#"global price : number = 40
page start() {
    init { }
    render { boxed { post "total: " ++ (price + 2); } }
}"#,
    )
    .expect("starts");
    assert_eq!(session.live_view(), "total: 42\n");

    // Select the rendered cell by screen position, as a pointer would.
    let tree = session.display_tree().expect("renders");
    let (path, ordinal) = hit_test_leaf(&layout(&tree), Point::new(0, 0)).expect("hit");

    // Ask for the displayed value to become "total: 45": the offer is
    // ranked, best (most local) candidate first.
    let repairs = session
        .repairs_at(&path, ordinal, "total: 45")
        .expect("invertible");
    assert!(
        repairs.windows(2).all(|p| p[0].rank <= p[1].rank),
        "ranked best-first: {repairs:?}"
    );
    // The best candidate inverts through the concatenation and the
    // addition down to the `2` literal: "total: 45" ⇒ price + 2 = 45
    // ⇒ 2 becomes 5.
    assert!(
        repairs[0].description.contains("change `2` to `5`"),
        "most local inversion reaches the literal: {repairs:?}"
    );
    assert!(session.apply_repair(0).expect("applies").is_applied());

    // Enshrined: the *code* changed, and the view re-renders from it.
    assert_eq!(session.live_view(), "total: 45\n");
    assert!(
        session.source().contains("price + 5"),
        "the literal was rewritten in source: {}",
        session.source()
    );
}

// ---------------------------------------------------------------------
// §4.2 — progress: unstable states always step
// ---------------------------------------------------------------------

#[test]
fn progress_unstable_states_always_step() {
    let mut sys = System::new(compiled(
        "page start() {
             init { push second(); }
             render { }
         }
         page second() {
             render { boxed { on tap { pop; } } }
         }",
    ));
    // From the initial (unstable) state, step() never returns Stable
    // until the state actually is stable.
    let mut steps = 0;
    loop {
        let stable_before = sys.is_stable();
        let kind = sys.step().expect("steps");
        if kind == StepKind::Stable {
            assert!(stable_before, "Stable only in stable states");
            break;
        }
        assert!(!stable_before, "unstable states make progress");
        steps += 1;
        assert!(steps < 100, "terminates");
    }
}
