//! Golden metrics snapshot: a fixed editing session driven on a manual
//! clock, with both the `:metrics` human rendering and the snapshot
//! wire format checked in at `tests/data/metrics_session.metrics`.
//! Mirrors `tests/golden_trace.rs`: any drift in what the session
//! counts, how quantiles interpolate, or how snapshots serialize shows
//! up as a byte diff here.

use its_alive::core::system::SystemConfig;
use its_alive::live::{
    format_metrics_snapshot, LiveSession, ManualClock, MetricsSnapshot, Registry, SessionCommand,
};

const GOLDEN_PATH: &str = "tests/data/metrics_session.metrics";
const WIRE_MARKER: &str = "--- wire ---";

const APP: &str = r#"
global count : number = 0
page start() {
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 1; }
        }
        boxed {
            post "open detail";
            on tap { push detail(count); }
        }
    }
}
page detail(n : number) {
    render {
        boxed { post "detail of " ++ n; on tap { pop; } }
    }
}
"#;

/// Run the scripted session: every duration comes from an auto-stepping
/// manual clock, so the resulting snapshot is identical on every run
/// and every machine.
fn record() -> MetricsSnapshot {
    let registry = Registry::with_clock(ManualClock::with_auto_step(7).shared());
    let mut session = LiveSession::observed(
        APP,
        SystemConfig {
            fuel: 50_000,
            max_transitions: 500,
            ..SystemConfig::default()
        },
        false,
        &registry,
    )
    .expect("APP compiles");

    session.apply(SessionCommand::Frame);
    session.apply(SessionCommand::TapPath(vec![0])); // count = 1
    session.apply(SessionCommand::TapPath(vec![1])); // push detail
    session.apply(SessionCommand::Back); // pop
    let relabeled = session.source().replace("count is ", "count = ");
    session.apply(SessionCommand::EditSource(relabeled)); // applied
    session.apply(SessionCommand::EditSource("not a program".into())); // rejected
    session.apply(SessionCommand::Undo); // back to "count is"
    session.apply(SessionCommand::Redo); // forward again
    session.apply(SessionCommand::Frame);
    session.metrics_snapshot()
}

fn golden_text(snapshot: &MetricsSnapshot) -> String {
    format!(
        "{}\n{WIRE_MARKER}\n{}",
        format_metrics_snapshot(snapshot),
        snapshot.to_wire()
    )
}

/// Re-record the golden file (run with
/// `cargo test --test metrics_golden -- --ignored bless`).
#[test]
#[ignore = "bless: regenerates the golden metrics file"]
fn bless_metrics_golden() {
    std::fs::create_dir_all("tests/data").expect("mkdir");
    std::fs::write(GOLDEN_PATH, golden_text(&record())).expect("write");
}

#[test]
fn metrics_session_matches_the_golden_snapshot() {
    const REBLESS: &str = "golden metrics out of date — if the change in \
         behavior is intended, regenerate it with:\n  cargo test --test \
         metrics_golden -- --ignored bless_metrics_golden";
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH}: {e}\n{REBLESS}"));

    let snapshot = record();
    assert_eq!(
        golden_text(&snapshot),
        golden,
        "metrics for the scripted session drifted.\n{REBLESS}"
    );

    // The checked-in wire section parses back to the same snapshot and
    // re-serializes byte-identically — the artifact format is total.
    let wire = golden
        .split_once(&format!("{WIRE_MARKER}\n"))
        .map(|(_, wire)| wire)
        .unwrap_or_else(|| panic!("no wire section in {GOLDEN_PATH}\n{REBLESS}"));
    let parsed = MetricsSnapshot::parse_wire(wire)
        .unwrap_or_else(|| panic!("wire section does not parse\n{REBLESS}"));
    assert_eq!(parsed, snapshot, "wire round-trip changed the snapshot");
    assert_eq!(
        parsed.to_wire(),
        wire,
        "re-serialization is not byte-identical"
    );

    // And the human rendering of the parsed snapshot matches what the
    // live session printed — `:metrics` over the wire loses nothing.
    assert_eq!(
        format_metrics_snapshot(&parsed),
        format_metrics_snapshot(&snapshot)
    );
}
