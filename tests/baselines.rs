//! E8 — live programming vs the conventional baselines of paper §2:
//! full restart, fix-and-continue, and retained-mode MVC.

use its_alive::apps::mortgage;
use its_alive::baseline::retained::{update_prices, update_selection};
use its_alive::baseline::{
    build_listings_view, FixAndContinueSession, ListingsModel, NavAction, RestartSession,
    RetainedApp, SwapOutcome,
};
use its_alive::core::Value;
use its_alive::live::LiveSession;

/// The same three-edit session, run live and with restarts: the live
/// session downloads once; the restart baseline downloads once per edit
/// and replays navigation every time.
#[test]
fn live_vs_restart_download_and_state() {
    let src = mortgage::mortgage_src(8);
    let edits = [
        |s: &str| s.replace("post \"Local\";", "post \"Nearby\";"),
        |s: &str| mortgage::apply_improvement_i2(s),
        |s: &str| mortgage::apply_improvement_i3(s),
    ];

    // Live session.
    let mut live = LiveSession::new(&src).expect("starts");
    live.tap_path(&[1, 0]).expect("open detail");
    for edit in edits {
        let new_src = edit(live.source());
        assert!(live.edit_source(&new_src).is_applied());
    }
    assert_eq!(live.system().cost().prim.web_requests, 1);
    assert_eq!(live.system().current_page().map(|(n, _)| n), Some("detail"));

    // Restart baseline.
    let mut restart = RestartSession::new(&src).expect("starts");
    restart
        .interact(NavAction::Tap(vec![1, 0]))
        .expect("open detail");
    for edit in edits {
        let new_src = edit(restart.source());
        restart.edit_source(&new_src).expect("edit applies");
    }
    assert_eq!(restart.restarts(), 3);
    assert_eq!(
        restart.cost().prim.web_requests,
        4,
        "initial download + one per restart"
    );
    // Simulated latency: restart pays ≥ 4x the download cost.
    assert!(
        restart.cost().prim.simulated_ms >= 4.0 * live.system().cost().prim.simulated_ms,
        "restart {} ms vs live {} ms",
        restart.cost().prim.simulated_ms,
        live.system().cost().prim.simulated_ms
    );
}

/// Handler-accumulated state: preserved live, destroyed by restart
/// (except what navigation replay happens to rebuild).
#[test]
fn restart_loses_state_that_live_keeps() {
    let src = "
        global score : number = 0
        page start() {
            render {
                boxed { post \"score \" ++ score; on tap { score := score + 1; } }
            }
        }";
    let mut live = LiveSession::new(src).expect("starts");
    let mut restart = RestartSession::new(src).expect("starts");
    for _ in 0..5 {
        live.tap_path(&[0]).expect("tap");
        restart.interact(NavAction::Tap(vec![0])).expect("tap");
    }
    assert_eq!(
        live.system().store().get("score"),
        Some(&Value::Number(5.0))
    );
    assert_eq!(
        restart.system().store().get("score"),
        Some(&Value::Number(5.0))
    );

    // Now an edit that changes only a label.
    let edit = |s: &str| s.replace("\"score \"", "\"points \"");
    assert!(live.edit_source(&edit(live.source())).is_applied());
    restart.edit_source(&edit(src)).expect("restarts");

    // Live kept the 5; restart replayed 5 taps from zero — same number
    // here, but it re-ran every handler (cost) and would diverge for
    // any state not reachable by replay.
    assert_eq!(
        live.system().store().get("score"),
        Some(&Value::Number(5.0))
    );
    let live_steps = live.system().cost().steps;
    let restart_steps = restart.cost().steps;
    assert!(
        restart_steps > live_steps,
        "restart re-executes history: {restart_steps} vs {live_steps} steps"
    );
}

/// Fix-and-continue swaps code but leaves the built display on screen —
/// the §2 criticism: edits to view-building code show nothing.
#[test]
fn fix_and_continue_serves_stale_views() {
    let src = "
        global n : number = 7
        page start() {
            render { boxed { post \"n is \" ++ n; on tap { n := n + 1; } } }
        }";
    let mut fnc = FixAndContinueSession::new(src).expect("starts");
    let outcome = fnc
        .swap_code(&src.replace("\"n is \"", "\"value = \""))
        .expect("swaps");
    assert!(matches!(outcome, SwapOutcome::SwappedDisplayStale(_)));
    assert!(fnc.view_is_stale().expect("comparable"));
    assert_eq!(fnc.stale_views_served(), 1);

    // The same edit in a live session refreshes immediately.
    let mut live = LiveSession::new(src).expect("starts");
    assert!(live
        .edit_source(&src.replace("\"n is \"", "\"value = \""))
        .is_applied());
    assert!(live.live_view().contains("value = 7"));
}

/// Retained-mode MVC: correct update rules keep the view consistent,
/// and forgetting one silently leaves it stale — impossible in the
/// immediate-mode model, where the view is re-derived from the model.
#[test]
fn retained_mvc_view_update_problem() {
    let model = ListingsModel {
        listings: (0..10)
            .map(|i| (format!("{i} Elm"), 100_000.0 + f64::from(i)))
            .collect(),
        selected: 0,
    };
    // Correct app: both rules registered.
    let mut good = RetainedApp::new(model.clone(), build_listings_view);
    good.on_change("selection", update_selection);
    good.on_change("price", update_prices);
    good.mutate("selection", |m| m.selected = 4);
    good.mutate("price", |m| m.listings[2].1 += 5_000.0);
    assert!(good.view_consistent(build_listings_view));

    // Buggy app: the price rule was forgotten.
    let mut buggy = RetainedApp::new(model, build_listings_view);
    buggy.on_change("selection", update_selection);
    buggy.mutate("price", |m| m.listings[2].1 += 5_000.0);
    assert!(!buggy.view_consistent(build_listings_view));
    assert_eq!(buggy.missing_rule_hits(), 1);
}

/// The immediate-mode counterpart of the retained app, in our language:
/// the view is always consistent because it is recomputed.
#[test]
fn immediate_mode_cannot_go_stale() {
    let src = "
        global prices : list number = [100, 200, 300]
        global selected : number = 0
        page start() {
            render {
                foreach p in prices {
                    boxed { post \"$\" ++ p; }
                }
                boxed { post \"selected: \" ++ selected; on tap { selected := selected + 1; } }
            }
        }";
    let mut s = LiveSession::new(src).expect("starts");
    s.tap_path(&[3]).expect("tap");
    // There is no way to observe a stale price: the render body is the
    // only description of the view and it just re-ran.
    assert!(s.live_view().contains("selected: 1"));
}
