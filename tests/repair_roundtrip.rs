//! Bidirectional-evaluation round trips over the scenario corpus.
//!
//! The repair engine promises that an *applied* candidate re-renders
//! the selected leaf to exactly the requested value — every numeric
//! inversion is verified by forward recomputation before it is offered.
//! This suite holds that promise against the five real demo programs
//! (mortgage, shopping, gallery, counter, calculator) *and* all twenty
//! generated `alive-corpus` programs with a seeded walk: pick any
//! provenance-carrying leaf of the live display, ask for a perturbed
//! value, apply a random candidate, and check the display byte-for-byte.
//! Replay a failure with `ALIVE_TESTKIT_SEED=<seed>`.
//!
//! A second test pins the tentpole invariant the repairs stand on: the
//! bytecode VM (via its compile-time constant-provenance table) must
//! tag every leaf and attribute with *the same* provenance the bigstep
//! tree walker derives at run time — not just value-equal frames.

use alive_testkit::{prop, prop_assert, prop_assert_eq, NoShrink, Rng};
use its_alive::apps::{calculator, counter, gallery, mortgage, shopping};
use its_alive::core::boxtree::{BoxItem, BoxNode};
use its_alive::core::system::{EvalEngine, System, SystemConfig};
use its_alive::core::value::fmt_number;
use its_alive::core::{compile, Value};
use its_alive::live::{LiveSession, RepairError};

/// The walk pool: every demo program in `alive-apps` plus the full
/// generated scenario corpus.
fn scenario_sources() -> Vec<(String, String)> {
    let mut pool: Vec<(String, String)> = vec![
        ("mortgage".into(), mortgage::default_src()),
        ("shopping".into(), shopping::SHOPPING_SRC.to_string()),
        ("gallery".into(), gallery::gallery_src(5)),
        ("counter".into(), counter::COUNTER_SRC.to_string()),
        ("calculator".into(), calculator::CALCULATOR_SRC.to_string()),
    ];
    for entry in alive_corpus::corpus() {
        pool.push((entry.spec.name(), entry.source));
    }
    pool
}

/// Every `(path, leaf-ordinal, value)` in the tree that carries
/// provenance — the leaves direct manipulation can select.
fn repairable_leaves(root: &BoxNode) -> Vec<(Vec<usize>, usize, Value)> {
    let mut out = Vec::new();
    root.walk(&mut |path, node| {
        let mut ordinal = 0;
        for item in &node.items {
            if let BoxItem::Leaf(value, prov) = item {
                if prov.is_some() {
                    out.push((path.to_vec(), ordinal, value.clone()));
                }
                ordinal += 1;
            }
        }
    });
    out
}

/// A perturbed desired value for `old`, in the textual form a user
/// would type into the selected cell. `None` for value shapes the
/// repair engine does not invert (colors, tuples, closures).
fn perturbed(rng: &mut Rng, old: &Value) -> Option<(String, Value)> {
    match old {
        Value::Number(n) => {
            let delta = (rng.below(9) + 1) as f64;
            let target = if rng.chance(1, 2) {
                n + delta
            } else {
                n - delta
            };
            Some((fmt_number(target), Value::Number(target)))
        }
        Value::Str(_) => {
            let word = rng.string_in("abcdefgh", 1, 6);
            Some((
                format!("\"edited {word}\""),
                Value::Str(format!("edited {word}").into()),
            ))
        }
        Value::Bool(b) => {
            let flipped = !b;
            Some((flipped.to_string(), Value::Bool(flipped)))
        }
        _ => None,
    }
}

#[test]
fn applied_repairs_re_render_the_desired_value() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    // Non-vacuity accounting: the walk must actually apply repairs, not
    // slide through on typed refusals.
    static APPLIED: AtomicUsize = AtomicUsize::new(0);
    let corpus = scenario_sources();
    let pool = corpus.len();
    prop::check(
        "applied_repairs_re_render_the_desired_value",
        prop::Config::with_cases(128),
        move |rng| NoShrink((rng.below(pool), rng.fork())),
        |case: &NoShrink<(usize, Rng)>| {
            let (app, walk_rng) = &case.0;
            let mut rng = walk_rng.clone();
            let (name, source) = &corpus[*app];
            let mut session =
                LiveSession::new(source).map_err(|e| format!("{name} must start: {e}"))?;
            let tree = session
                .display_tree()
                .ok_or_else(|| format!("{name} renders"))?;
            let leaves = repairable_leaves(&tree);
            prop_assert!(
                !leaves.is_empty(),
                "{} has provenance-carrying leaves",
                name
            );
            let (path, ordinal, old) = rng.choose(&leaves).clone();
            let Some((desired_text, desired_value)) = perturbed(&mut rng, &old) else {
                return Ok(()); // un-invertible value shape: nothing to assert
            };
            let view_before = session.live_view();
            let source_before = session.source().to_string();
            let repairs = match session.repairs_at(&path, ordinal, &desired_text) {
                Ok(repairs) => repairs,
                // Some expressions genuinely have no inversion (e.g. a
                // prim-call result): a typed refusal, not a failure.
                Err(RepairError::NoCandidates) => return Ok(()),
                Err(e) => return Err(format!("{name} poke {path:?}/{ordinal}: {e}")),
            };
            prop_assert!(!repairs.is_empty(), "offer is non-empty");
            for pair in repairs.windows(2) {
                prop_assert!(
                    pair[0].rank <= pair[1].rank,
                    "candidates ranked best-first: {:?}",
                    repairs
                );
            }
            prop_assert!(
                repairs.iter().all(|r| !r.description.is_empty()),
                "every candidate is described"
            );

            let index = rng.below(repairs.len());
            let outcome = session
                .apply_repair(index)
                .map_err(|e| format!("{name} apply[{index}]: {e}"))?;
            if outcome.is_applied() {
                APPLIED.fetch_add(1, Ordering::Relaxed);
                let tree = session
                    .display_tree()
                    .ok_or_else(|| format!("{name} re-renders"))?;
                let node = tree
                    .descendant(&path)
                    .ok_or_else(|| format!("box {path:?} survives the repair"))?;
                let (got, _) = node
                    .leaf_with_provenance(ordinal)
                    .ok_or_else(|| format!("leaf {ordinal} survives the repair"))?;
                prop_assert_eq!(
                    got,
                    &desired_value,
                    "{} repair[{}] of {:?}/{} renders the requested value",
                    name,
                    index,
                    path,
                    ordinal
                );
                // The offer was consumed: a second apply needs a fresh
                // selection.
                prop_assert_eq!(
                    session.apply_repair(index).err(),
                    Some(RepairError::NoPending),
                    "applied offers are consumed"
                );
            } else {
                // A candidate the running model refuses (it would fault
                // or be rejected) must leave the session untouched.
                prop_assert_eq!(
                    session.source(),
                    source_before.as_str(),
                    "{} refused repair leaves the source alone",
                    name
                );
                prop_assert_eq!(
                    session.live_view(),
                    view_before,
                    "{} refused repair leaves the view alone",
                    name
                );
            }
            Ok(())
        },
    );
    let applied = APPLIED.load(Ordering::Relaxed);
    assert!(
        applied >= 64,
        "the walk must exercise real applies, got {applied}"
    );
}

/// Lockstep item-by-item comparison *including provenance*, which the
/// value-based `BoxNode` equality deliberately ignores.
fn assert_provenance_agrees(name: &str, vm: &BoxNode, bs: &BoxNode, tagged: &mut usize) {
    assert_eq!(vm.items.len(), bs.items.len(), "{name}: item counts agree");
    for (i, (a, b)) in vm.items.iter().zip(&bs.items).enumerate() {
        match (a, b) {
            (BoxItem::Child(ca), BoxItem::Child(cb)) => {
                assert_provenance_agrees(name, ca, cb, tagged);
            }
            _ => {
                assert_eq!(a, b, "{name}: item {i} values agree");
                assert_eq!(
                    a.provenance(),
                    b.provenance(),
                    "{name}: item {i} provenance agrees (vm vs bigstep)"
                );
                if a.provenance().is_some() {
                    *tagged += 1;
                }
            }
        }
    }
}

#[test]
fn vm_and_bigstep_tag_identical_provenance_on_every_scenario() {
    for (name, source) in scenario_sources() {
        let program = compile(&source).expect("scenario programs compile");
        let mut vm_sys = System::with_config(program.clone(), SystemConfig::default());
        let mut bs_sys = System::with_config(
            program,
            SystemConfig {
                engine: EvalEngine::Bigstep,
                ..SystemConfig::default()
            },
        );
        vm_sys.run_to_stable().expect("vm startup renders");
        bs_sys.run_to_stable().expect("bigstep startup renders");
        let vm_frame = vm_sys.rendered().expect("vm frame").clone();
        let bs_frame = bs_sys.rendered().expect("bigstep frame").clone();
        assert_eq!(vm_frame, bs_frame, "{name}: frames byte-identical");
        let mut tagged = 0;
        assert_provenance_agrees(&name, &vm_frame, &bs_frame, &mut tagged);
        assert!(tagged > 0, "{name}: provenance actually present");
        let stats = vm_sys.vm_stats();
        assert_eq!(
            stats.fallbacks, 0,
            "{name}: provenance came from the VM, not a fallback ({stats:?})"
        );
        assert!(stats.runs > 0, "{name}: the VM actually ran ({stats:?})");
    }
}
